// SLO watchdog contract: the .slo grammar (and its line-numbered
// diagnostics), full-segment wildcard matching, the warn/fail/hard
// severity ladder with burn-rate latching and recovery, and the
// deterministic alert renderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "simcore/sim_time.hpp"

namespace strings::obs {
namespace {

TEST(SloRules, ParsesFullGrammar) {
  const auto rules = parse_slo_rules(R"(
# comment lines and blanks are ignored
[queue-delay]
metric  = tenant/*/queue_ms
reducer = p99
op      = gt
warn    = 5.0   # trailing comments too
fail    = 20
burn_windows = 3

[drops]
metric = tenant/acme/errors
reducer = delta
fail = 1
)");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "queue-delay");
  EXPECT_EQ(rules[0].metric, "tenant/*/queue_ms");
  EXPECT_EQ(rules[0].reducer, "p99");
  EXPECT_EQ(rules[0].op, "gt");
  EXPECT_TRUE(rules[0].has_warn);
  EXPECT_DOUBLE_EQ(rules[0].warn, 5.0);
  EXPECT_TRUE(rules[0].has_fail);
  EXPECT_DOUBLE_EQ(rules[0].fail, 20.0);
  EXPECT_EQ(rules[0].burn_windows, 3);
  EXPECT_EQ(rules[1].reducer, "delta");
  EXPECT_FALSE(rules[1].has_warn);
  EXPECT_EQ(rules[1].burn_windows, 1);  // default
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    parse_slo_rules(text);
    FAIL() << "expected SloParseError for: " << text;
  } catch (const SloParseError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(SloRules, DiagnosticsCarryLineNumbers) {
  expect_parse_error("", "no [rule] sections found");
  expect_parse_error("metric = x\n", "line 1");  // key before any section
  expect_parse_error("[r]\nbogus = 1\n", "line 2");
  expect_parse_error("[r]\nmetric = x\nwarn = not-a-number\n", "line 3");
  expect_parse_error("[r]\nmetric = x\nreducer = p42\nfail = 1\n", "p42");
  expect_parse_error("[r]\nwarn = 1\n", "metric");  // rule without a metric
  expect_parse_error("[r]\nmetric = x\n", "warn");  // neither threshold
  expect_parse_error("[r]\nmetric = x\nfail = 1\nburn_windows = 0\n",
                     "burn_windows");
}

TEST(SloRules, WildcardMatchesFullSegmentsOnly) {
  EXPECT_TRUE(slo_metric_match("tenant/*/queue_ms", "tenant/acme/queue_ms"));
  EXPECT_FALSE(slo_metric_match("tenant/*/queue_ms", "tenant/queue_ms"));
  EXPECT_FALSE(
      slo_metric_match("tenant/*/queue_ms", "tenant/a/b/queue_ms"));
  EXPECT_TRUE(slo_metric_match("*", "anything"));
  EXPECT_FALSE(slo_metric_match("*", "a/b"));  // one segment, not a prefix
  EXPECT_TRUE(slo_metric_match("a/b", "a/b"));  // literal
  EXPECT_FALSE(slo_metric_match("a/b", "a/c"));
}

// One synthetic window with a single scalar series.
Window scalar_window(std::uint64_t index, const std::string& name,
                     double value, double delta) {
  Window w;
  w.index = index;
  w.start = sim::msec(10) * static_cast<sim::SimTime>(index);
  w.end = w.start + sim::msec(10);
  w.series[name] = SeriesPoint{value, delta};
  return w;
}

TEST(SloWatchdog, WarnFailLadderAndCounts) {
  SloRule r;
  r.name = "lag";
  r.metric = "svc/lag";
  r.reducer = "value";
  r.warn = 5.0;
  r.has_warn = true;
  r.fail = 10.0;
  r.has_fail = true;
  SloWatchdog dog({r});

  EXPECT_TRUE(dog.evaluate(scalar_window(0, "svc/lag", 3.0, 3.0)).empty());
  auto warn = dog.evaluate(scalar_window(1, "svc/lag", 7.0, 4.0));
  ASSERT_EQ(warn.size(), 1u);
  EXPECT_EQ(warn[0].severity, "warn");
  EXPECT_DOUBLE_EQ(warn[0].value, 7.0);
  EXPECT_DOUBLE_EQ(warn[0].threshold, 5.0);

  // burn_windows defaults to 1: the first failing window is already hard.
  auto fail = dog.evaluate(scalar_window(2, "svc/lag", 12.0, 5.0));
  ASSERT_EQ(fail.size(), 2u);
  EXPECT_EQ(fail[0].severity, "fail");
  EXPECT_EQ(fail[1].severity, "hard");
  EXPECT_EQ(dog.warn_count(), 1);
  EXPECT_EQ(dog.fail_count(), 1);
  EXPECT_EQ(dog.hard_violations(), 1);
  EXPECT_EQ(dog.alerts().size(), 3u);
}

TEST(SloWatchdog, BurnRateLatchesOnceAndResetsOnRecovery) {
  SloRule r;
  r.name = "burn";
  r.metric = "svc/lag";
  r.fail = 10.0;
  r.has_fail = true;
  r.burn_windows = 3;
  SloWatchdog dog({r});

  auto fail_window = [&](std::uint64_t i) {
    return dog.evaluate(scalar_window(i, "svc/lag", 20.0, 0.0));
  };
  EXPECT_EQ(fail_window(0).size(), 1u);  // fail, streak 1
  EXPECT_EQ(fail_window(1).size(), 1u);  // fail, streak 2
  auto third = fail_window(2);           // streak 3 -> hard fires
  ASSERT_EQ(third.size(), 2u);
  EXPECT_EQ(third[1].severity, "hard");
  // Latched: further failing windows keep raising "fail" but not "hard".
  auto fourth = fail_window(3);
  ASSERT_EQ(fourth.size(), 1u);
  EXPECT_EQ(fourth[0].severity, "fail");
  EXPECT_EQ(dog.hard_violations(), 1);

  // A healthy window with data resets the streak and the latch...
  EXPECT_TRUE(dog.evaluate(scalar_window(4, "svc/lag", 1.0, 0.0)).empty());
  // ...so a fresh sustained burn can fire a second hard alert.
  fail_window(5);
  fail_window(6);
  auto relatch = fail_window(7);
  ASSERT_EQ(relatch.size(), 2u);
  EXPECT_EQ(relatch[1].severity, "hard");
  EXPECT_EQ(dog.hard_violations(), 2);
}

TEST(SloWatchdog, NoDataWindowResetsBurnStreak) {
  SloRule r;
  r.name = "burn";
  r.metric = "svc/lag";
  r.fail = 10.0;
  r.has_fail = true;
  r.burn_windows = 2;
  SloWatchdog dog({r});

  dog.evaluate(scalar_window(0, "svc/lag", 20.0, 0.0));  // streak 1
  Window quiet;  // the series vanished: idleness, not violation
  quiet.index = 1;
  quiet.end = sim::msec(20);
  EXPECT_TRUE(dog.evaluate(quiet).empty());
  dog.evaluate(scalar_window(2, "svc/lag", 20.0, 0.0));  // streak restarts at 1
  EXPECT_EQ(dog.hard_violations(), 0);
  dog.evaluate(scalar_window(3, "svc/lag", 20.0, 0.0));  // streak 2 -> hard
  EXPECT_EQ(dog.hard_violations(), 1);
}

TEST(SloWatchdog, LtOperatorAndWildcardFanOut) {
  SloRule r;
  r.name = "throughput";
  r.metric = "tenant/*/completed";
  r.reducer = "delta";
  r.op = "lt";
  r.fail = 2.0;
  r.has_fail = true;
  SloWatchdog dog({r});

  Window w;
  w.index = 0;
  w.end = sim::msec(10);
  w.series["tenant/a/completed"] = SeriesPoint{10.0, 1.0};  // too slow
  w.series["tenant/b/completed"] = SeriesPoint{50.0, 5.0};  // healthy
  w.series["tenant/a/errors"] = SeriesPoint{0.0, 0.0};      // not matched
  auto alerts = dog.evaluate(w);
  ASSERT_EQ(alerts.size(), 2u);  // fail + hard (burn_windows = 1)
  EXPECT_EQ(alerts[0].series, "tenant/a/completed");
}

TEST(SloWatchdog, HistogramReducerViaWindow) {
  Registry reg;
  auto& h = reg.histogram("tenant/a/queue_ms", default_latency_buckets_ms());
  for (int i = 0; i < 100; ++i) h.observe(80.0);
  TimeSeries ts({});
  const Window& w = ts.close_window(reg, sim::msec(10));

  SloRule r;
  r.name = "queue";
  r.metric = "tenant/*/queue_ms";
  r.reducer = "p99";
  r.warn = 10.0;
  r.has_warn = true;
  SloWatchdog dog({r});
  auto alerts = dog.evaluate(w);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].severity, "warn");
  EXPECT_GT(alerts[0].value, 10.0);
}

TEST(SloAlerts, RenderingsAreDeterministic) {
  SloAlert a;
  a.window = 3;
  a.at = sim::msec(40);
  a.rule = "queue-delay";
  a.series = "tenant/a/queue_ms";
  a.severity = "fail";
  a.value = 25.5;
  a.threshold = 20.0;

  const std::string arr = render_alerts_json({a});
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
  EXPECT_NE(arr.find("\"rule\":\"queue-delay\""), std::string::npos);
  EXPECT_NE(arr.find("\"severity\":\"fail\""), std::string::npos);
  EXPECT_EQ(render_alerts_json({}), "[]");

  std::ostringstream os;
  write_alerts_jsonl(os, {a, a});
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("\"schema\":\"strings.alert.v1\""), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

}  // namespace
}  // namespace strings::obs
