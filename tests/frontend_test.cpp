// Unit tests for the frontend: DirectApi (bare runtime semantics) and the
// Interposer (device-selection override, lazy binding, one-way posting,
// feedback forwarding), against a scripted SchedulerDirectory.
#include "frontend/direct_api.hpp"
#include "frontend/interposer.hpp"

#include <gtest/gtest.h>

#include "backend/backend_daemon.hpp"
#include "gpu/device_props.hpp"
#include "simcore/simulation.hpp"

namespace strings::frontend {
namespace {

using cuda::cudaError_t;
using cuda::cudaMemcpyKind;
using sim::msec;
using sim::SimTime;

struct Stack {
  explicit Stack(backend::Design design = backend::Design::kThreadPerApp) {
    auto props = gpu::tesla_c2050();
    props.copy_latency = 0;
    props.crowding_alpha = 0;
    for (int i = 0; i < 2; ++i) {
      devices.push_back(std::make_unique<gpu::GpuDevice>(sim, i, props));
    }
    rt = std::make_unique<cuda::CudaRuntime>(
        sim, std::vector<gpu::GpuDevice*>{devices[0].get(), devices[1].get()});
    backend::BackendConfig cfg;
    cfg.design = design;
    daemon = std::make_unique<backend::BackendDaemon>(
        sim, 0, *rt, std::vector<core::Gid>{0, 1}, cfg);
  }
  sim::Simulation sim;
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::unique_ptr<cuda::CudaRuntime> rt;
  std::unique_ptr<backend::BackendDaemon> daemon;
};

/// Scripted directory: always selects `gid_to_return`, records interactions.
class FakeDirectory final : public SchedulerDirectory {
 public:
  explicit FakeDirectory(Stack& stack) : stack_(stack) {
    gmap_.add_node(0, {stack.devices[0]->props(), stack.devices[1]->props()});
  }
  core::Gid select_device(const std::string& app_type,
                          core::NodeId origin) override {
    ++selections;
    last_app_type = app_type;
    last_origin = origin;
    return gid_to_return;
  }
  const core::GpuEntry& resolve(core::Gid gid) override {
    return gmap_.entry(gid);
  }
  backend::BackendDaemon& daemon(core::NodeId) override {
    return *stack_.daemon;
  }
  void unbind(core::Gid gid, const std::string& app,
              core::NodeId origin) override {
    unbinds.emplace_back(gid, app);
    last_origin = origin;
  }
  void report_feedback(const core::FeedbackRecord& rec,
                       core::NodeId origin) override {
    feedback.push_back(rec);
    last_origin = origin;
  }
  rpc::LinkModel link_between(core::NodeId, core::NodeId) override {
    return rpc::LinkModel::shared_memory();
  }

  Stack& stack_;
  core::GMap gmap_;
  core::Gid gid_to_return = 0;
  int selections = 0;
  std::string last_app_type;
  core::NodeId last_origin = -1;
  std::vector<std::pair<core::Gid, std::string>> unbinds;
  std::vector<core::FeedbackRecord> feedback;
};

backend::AppDescriptor make_app(const std::string& type = "MC") {
  backend::AppDescriptor app;
  app.app_id = 77;
  app.app_type = type;
  app.tenant = "T";
  app.origin_node = 0;
  return app;
}

TEST(DirectApi, HonorsExplicitDeviceSelection) {
  Stack s;
  s.sim.spawn("app", [&] {
    DirectApi api(*s.rt);
    ASSERT_EQ(api.cudaSetDevice(1), cudaError_t::cudaSuccess);
    cuda::DevPtr p = 0;
    ASSERT_EQ(api.cudaMalloc(&p, 1024), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaLaunch({"k", gpu::KernelDesc{msec(5), 0.5, 0}}),
              cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaDeviceSynchronize(), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
  });
  s.sim.run();
  EXPECT_EQ(s.devices[1]->counters().kernels_completed, 1);
  EXPECT_EQ(s.devices[0]->counters().kernels_completed, 0);
}

TEST(Interposer, OverridesDeviceSelection) {
  Stack s;
  FakeDirectory dir(s);
  dir.gid_to_return = 1;  // balancer picks device 1
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app("EV"), InterposerConfig{});
    ASSERT_EQ(api.cudaSetDevice(0), cudaError_t::cudaSuccess);  // app wants 0
    ASSERT_EQ(api.cudaLaunch({"k", gpu::KernelDesc{msec(5), 0.5, 0}}),
              cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaDeviceSynchronize(), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
    EXPECT_EQ(api.bound_gid(), 1);
  });
  s.sim.run();
  EXPECT_EQ(dir.selections, 1);
  EXPECT_EQ(dir.last_app_type, "EV");
  EXPECT_EQ(s.devices[1]->counters().kernels_completed, 1);
  EXPECT_EQ(s.devices[0]->counters().kernels_completed, 0);
}

TEST(Interposer, BindsLazilyOnFirstCall) {
  Stack s;
  FakeDirectory dir(s);
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    EXPECT_EQ(dir.selections, 0);  // no binding yet
    cuda::DevPtr p = 0;
    ASSERT_EQ(api.cudaMalloc(&p, 1024), cudaError_t::cudaSuccess);
    EXPECT_EQ(dir.selections, 1);  // bound without an explicit cudaSetDevice
    ASSERT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
  });
  s.sim.run();
}

TEST(Interposer, SetDeviceBindsOnlyOnce) {
  Stack s;
  FakeDirectory dir(s);
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    api.cudaSetDevice(0);
    api.cudaSetDevice(1);
    api.cudaSetDevice(0);
    EXPECT_EQ(dir.selections, 1);
    api.cudaThreadExit();
  });
  s.sim.run();
}

TEST(Interposer, NonBlockingPostsReturnImmediately) {
  Stack s;
  FakeDirectory dir(s);
  SimTime after_launch = -1, after_sync = -1;
  s.sim.spawn("app", [&] {
    InterposerConfig cfg;
    cfg.nonblocking_rpc = true;
    Interposer api(dir, make_app(), cfg);
    api.cudaSetDevice(0);
    const SimTime before = s.sim.now();
    ASSERT_EQ(api.cudaLaunch({"k", gpu::KernelDesc{msec(50), 0.5, 0}}),
              cudaError_t::cudaSuccess);
    after_launch = s.sim.now() - before;
    ASSERT_EQ(api.cudaDeviceSynchronize(), cudaError_t::cudaSuccess);
    after_sync = s.sim.now() - before;
    api.cudaThreadExit();
  });
  s.sim.run();
  EXPECT_EQ(after_launch, 0);       // one-way post
  EXPECT_GE(after_sync, msec(50));  // sync waited for the kernel
}

TEST(Interposer, BlockingRpcWaitsForEachResponse) {
  Stack s;
  FakeDirectory dir(s);
  SimTime after_launch = -1;
  s.sim.spawn("app", [&] {
    InterposerConfig cfg;
    cfg.nonblocking_rpc = false;
    Interposer api(dir, make_app(), cfg);
    api.cudaSetDevice(0);
    const SimTime before = s.sim.now();
    ASSERT_EQ(api.cudaLaunch({"k", gpu::KernelDesc{msec(50), 0.5, 0}}),
              cudaError_t::cudaSuccess);
    after_launch = s.sim.now() - before;
    api.cudaDeviceSynchronize();
    api.cudaThreadExit();
  });
  s.sim.run();
  // Round trip through the channel takes nonzero virtual time, but the
  // launch itself is still asynchronous on the device.
  EXPECT_GT(after_launch, 0);
  EXPECT_LT(after_launch, msec(50));
}

TEST(Interposer, ThreadExitForwardsFeedbackAndUnbinds) {
  Stack s;
  FakeDirectory dir(s);
  dir.gid_to_return = 0;
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app("HI"), InterposerConfig{});
    api.cudaSetDevice(0);
    api.cudaLaunch({"k", gpu::KernelDesc{msec(20), 0.5, 10.0}});
    api.cudaDeviceSynchronize();
    ASSERT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
    ASSERT_TRUE(api.last_feedback().has_value());
    EXPECT_EQ(api.last_feedback()->app_type, "HI");
    EXPECT_NEAR(api.last_feedback()->gpu_time_s, 0.020, 1e-3);
  });
  s.sim.run();
  ASSERT_EQ(dir.feedback.size(), 1u);
  EXPECT_EQ(dir.feedback[0].app_type, "HI");
  ASSERT_EQ(dir.unbinds.size(), 1u);
  EXPECT_EQ(dir.unbinds[0], std::make_pair(core::Gid{0}, std::string("HI")));
}

TEST(Interposer, ThreadExitIsIdempotent) {
  Stack s;
  FakeDirectory dir(s);
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    api.cudaSetDevice(0);
    EXPECT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
    EXPECT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
  });
  s.sim.run();
  EXPECT_EQ(dir.unbinds.size(), 1u);
}

TEST(Interposer, ExitWithoutBindingIsNoOp) {
  Stack s;
  FakeDirectory dir(s);
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    EXPECT_EQ(api.cudaThreadExit(), cudaError_t::cudaSuccess);
  });
  s.sim.run();
  EXPECT_EQ(dir.selections, 0);
  EXPECT_TRUE(dir.unbinds.empty());
}

TEST(Interposer, MallocNullPointerRejected) {
  Stack s;
  FakeDirectory dir(s);
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    EXPECT_EQ(api.cudaMalloc(nullptr, 100), cudaError_t::cudaErrorInvalidValue);
  });
  s.sim.run();
  EXPECT_EQ(dir.selections, 0);  // invalid call must not bind
}

TEST(Interposer, OneWayPostsPreserveProgramOrder) {
  // Paper SIII-B-2: non-blocking RPC keeps per-application order because
  // the channel is FIFO and the worker serves sequentially. A blocking D2H
  // issued right after one-way H2D + launch must observe both.
  Stack s;
  FakeDirectory dir(s);
  SimTime d2h_done = -1;
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    api.cudaSetDevice(0);
    cuda::DevPtr p = 0;
    ASSERT_EQ(api.cudaMalloc(&p, 60'000'000), cudaError_t::cudaSuccess);
    const SimTime before = s.sim.now();
    // One-way: 60MB upload (10ms on the wire) and a 30ms kernel.
    api.cudaMemcpy(p, 60'000'000, cudaMemcpyKind::cudaMemcpyHostToDevice);
    api.cudaLaunch({"k", gpu::KernelDesc{msec(30), 0.5, 0}});
    // Blocking download: same stream, so it runs after upload + kernel.
    ASSERT_EQ(api.cudaMemcpy(p, 6'000'000,
                             cudaMemcpyKind::cudaMemcpyDeviceToHost),
              cudaError_t::cudaSuccess);
    d2h_done = s.sim.now() - before;
    api.cudaThreadExit();
  });
  s.sim.run();
  // >= upload(10ms) + kernel(30ms) + download(1ms); well below if order
  // were violated.
  EXPECT_GE(d2h_done, msec(41));
  EXPECT_LT(d2h_done, msec(60));
}

TEST(Interposer, EventsTimeGpuWorkAcrossTheStack) {
  Stack s;
  FakeDirectory dir(s);
  double ms = 0.0;
  s.sim.spawn("app", [&] {
    Interposer api(dir, make_app(), InterposerConfig{});
    api.cudaSetDevice(0);
    cuda::cudaEvent_t start = 0, stop = 0;
    ASSERT_EQ(api.cudaEventCreate(&start), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaEventCreate(&stop), cudaError_t::cudaSuccess);
    EXPECT_NE(start, stop);
    ASSERT_EQ(api.cudaEventRecord(start), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaLaunch({"k", gpu::KernelDesc{msec(30), 0.5, 0}}),
              cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaEventRecord(stop), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaEventSynchronize(stop), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaEventElapsedTime(&ms, start, stop),
              cudaError_t::cudaSuccess);
    api.cudaEventDestroy(start);
    api.cudaEventDestroy(stop);
    api.cudaThreadExit();
  });
  s.sim.run();
  // Measured on the app's own stream (AST); sub-par-microsecond slack for
  // worker processing between the record and the launch.
  EXPECT_NEAR(ms, 30.0, 0.01);
}

TEST(DirectApi, EventsWorkOnDefaultStream) {
  Stack s;
  double ms = 0.0;
  s.sim.spawn("app", [&] {
    DirectApi api(*s.rt);
    api.cudaSetDevice(0);
    cuda::cudaEvent_t start = 0, stop = 0;
    ASSERT_EQ(api.cudaEventCreate(&start), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaEventCreate(&stop), cudaError_t::cudaSuccess);
    api.cudaEventRecord(start);
    api.cudaLaunch({"k", gpu::KernelDesc{msec(12), 0.5, 0}});
    api.cudaEventRecord(stop);
    ASSERT_EQ(api.cudaEventSynchronize(stop), cudaError_t::cudaSuccess);
    ASSERT_EQ(api.cudaEventElapsedTime(&ms, start, stop),
              cudaError_t::cudaSuccess);
  });
  s.sim.run();
  EXPECT_DOUBLE_EQ(ms, 12.0);
}

TEST(Interposer, MemcpyErrorsSurfaceOnBlockingPath) {
  Stack s;
  FakeDirectory dir(s);
  s.sim.spawn("app", [&] {
    InterposerConfig cfg;
    cfg.nonblocking_rpc = false;  // errors come back on the response
    Interposer api(dir, make_app(), cfg);
    api.cudaSetDevice(0);
    // No allocation: the backend rejects the pointer.
    EXPECT_EQ(api.cudaMemcpy(0xBAD, 64, cudaMemcpyKind::cudaMemcpyHostToDevice),
              cudaError_t::cudaErrorInvalidDevicePointer);
    api.cudaThreadExit();
  });
  s.sim.run();
}

}  // namespace
}  // namespace strings::frontend
