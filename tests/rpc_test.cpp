// Unit and property tests for marshalling and timed RPC channels.
#include "rpc/channel.hpp"
#include "rpc/marshal.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "core/control_plane.hpp"
#include "simcore/simulation.hpp"

namespace strings::rpc {
namespace {

using sim::msec;
using sim::SimTime;
using sim::usec;

TEST(Marshal, RoundTripPrimitives) {
  Marshal m;
  m.put_u8(0xAB);
  m.put_bool(true);
  m.put_u32(0xDEADBEEF);
  m.put_i32(-12345);
  m.put_u64(0x1122334455667788ull);
  m.put_i64(-9'000'000'000ll);
  m.put_double(3.14159);
  m.put_string("hello strings");
  m.put_enum(CallId::kLaunch);

  Unmarshal u(m.buffer());
  EXPECT_EQ(u.get_u8(), 0xAB);
  EXPECT_TRUE(u.get_bool());
  EXPECT_EQ(u.get_u32(), 0xDEADBEEF);
  EXPECT_EQ(u.get_i32(), -12345);
  EXPECT_EQ(u.get_u64(), 0x1122334455667788ull);
  EXPECT_EQ(u.get_i64(), -9'000'000'000ll);
  EXPECT_DOUBLE_EQ(u.get_double(), 3.14159);
  EXPECT_EQ(u.get_string(), "hello strings");
  EXPECT_EQ(u.get_enum<CallId>(), CallId::kLaunch);
  EXPECT_TRUE(u.done());
}

TEST(Marshal, EmptyStringAndBytes) {
  Marshal m;
  m.put_string("");
  m.put_bytes({});
  Unmarshal u(m.buffer());
  EXPECT_EQ(u.get_string(), "");
  EXPECT_TRUE(u.get_bytes().empty());
  EXPECT_TRUE(u.done());
}

TEST(Marshal, TruncatedPacketThrows) {
  Marshal m;
  m.put_u64(42);
  auto buf = m.buffer();
  buf.resize(4);
  Unmarshal u(buf);
  EXPECT_THROW(u.get_u64(), DecodeError);
}

TEST(Marshal, CorruptLengthPrefixThrows) {
  Marshal m;
  m.put_u32(1'000'000);  // claims a 1MB string follows
  Unmarshal u(m.buffer());
  EXPECT_THROW(u.get_string(), DecodeError);
}

// Property: random sequences of typed fields round-trip exactly.
class MarshalPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MarshalPropertyTest, RandomRoundTrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> type_dist(0, 4);
  std::uniform_int_distribution<std::uint64_t> val_dist;
  std::uniform_int_distribution<int> len_dist(0, 64);

  Marshal m;
  std::vector<int> types;
  std::vector<std::uint64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  for (int i = 0; i < 50; ++i) {
    const int t = type_dist(rng);
    types.push_back(t);
    switch (t) {
      case 0: ints.push_back(val_dist(rng) & 0xFF); m.put_u8(static_cast<std::uint8_t>(ints.back())); break;
      case 1: ints.push_back(val_dist(rng) & 0xFFFFFFFF); m.put_u32(static_cast<std::uint32_t>(ints.back())); break;
      case 2: ints.push_back(val_dist(rng)); m.put_u64(ints.back()); break;
      case 3: {
        doubles.push_back(static_cast<double>(val_dist(rng)) / 7.0);
        m.put_double(doubles.back());
        break;
      }
      case 4: {
        std::string s;
        const int n = len_dist(rng);
        for (int k = 0; k < n; ++k) s.push_back(static_cast<char>('a' + (val_dist(rng) % 26)));
        strings.push_back(s);
        m.put_string(s);
        break;
      }
    }
  }
  Unmarshal u(m.buffer());
  std::size_t ii = 0, di = 0, si = 0;
  for (int t : types) {
    switch (t) {
      case 0: EXPECT_EQ(u.get_u8(), ints[ii++]); break;
      case 1: EXPECT_EQ(u.get_u32(), ints[ii++]); break;
      case 2: EXPECT_EQ(u.get_u64(), ints[ii++]); break;
      case 3: EXPECT_DOUBLE_EQ(u.get_double(), doubles[di++]); break;
      case 4: EXPECT_EQ(u.get_string(), strings[si++]); break;
    }
  }
  EXPECT_TRUE(u.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 42u, 1337u));

TEST(Channel, DeliversInOrderWithLatency) {
  sim::Simulation sim;
  Channel ch(sim, LinkModel{usec(50), 0.0});
  std::vector<std::pair<std::uint64_t, SimTime>> got;
  sim.spawn("rx", [&] {
    for (int i = 0; i < 3; ++i) {
      Packet p = ch.receive();
      got.emplace_back(p.seq, sim.now());
    }
  });
  sim.spawn("tx", [&] {
    for (std::uint64_t i = 0; i < 3; ++i) {
      Packet p;
      p.seq = i;
      ch.send(std::move(p));
      sim.wait_for(usec(100));
    }
  });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(std::uint64_t{0}, usec(50)));
  EXPECT_EQ(got[1], std::make_pair(std::uint64_t{1}, usec(150)));
  EXPECT_EQ(got[2], std::make_pair(std::uint64_t{2}, usec(250)));
}

TEST(Channel, BandwidthSerializesLargePackets) {
  sim::Simulation sim;
  // 0.117 GB/s GigE; 117000-byte body takes ~1ms on the wire.
  Channel ch(sim, LinkModel{0, 0.117});
  std::vector<SimTime> arrivals;
  sim.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      ch.receive();
      arrivals.push_back(sim.now());
    }
  });
  sim.spawn("tx", [&] {
    for (int i = 0; i < 2; ++i) {
      Packet p;
      p.body.resize(117'000 - 24);
      ch.send(std::move(p));
    }
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], msec(1));
  EXPECT_EQ(arrivals[1], msec(2));  // serialized behind the first
}

TEST(Channel, SharedMemoryIsFasterThanEthernet) {
  sim::Simulation sim;
  Channel shm(sim, LinkModel::shared_memory());
  Channel eth(sim, LinkModel::gigabit_ethernet());
  SimTime shm_at = -1, eth_at = -1;
  sim.spawn("rx1", [&] {
    shm.receive();
    shm_at = sim.now();
  });
  sim.spawn("rx2", [&] {
    eth.receive();
    eth_at = sim.now();
  });
  sim.spawn("tx", [&] {
    Packet a;
    a.body.resize(4096);
    Packet b;
    b.body.resize(4096);
    shm.send(std::move(a));
    eth.send(std::move(b));
  });
  sim.run();
  EXPECT_LT(shm_at, eth_at);
}

TEST(Channel, SharedWireSerializesAcrossChannels) {
  sim::Simulation sim;
  auto wire = std::make_shared<SharedLink>();
  // Two channels share one 1-byte-per-ns wire (1 GB/s), zero latency.
  Channel a(sim, LinkModel{0, 1.0}, wire);
  Channel b(sim, LinkModel{0, 1.0}, wire);
  SimTime a_at = -1, b_at = -1;
  sim.spawn("rxa", [&] {
    a.receive();
    a_at = sim.now();
  });
  sim.spawn("rxb", [&] {
    b.receive();
    b_at = sim.now();
  });
  sim.spawn("tx", [&] {
    Packet pa;
    pa.body.resize(1000 - 24);
    Packet pb;
    pb.body.resize(1000 - 24);
    a.send(std::move(pa));
    b.send(std::move(pb));  // queues behind a's packet on the shared wire
  });
  sim.run();
  EXPECT_EQ(a_at, 1000);
  EXPECT_EQ(b_at, 2000);
}

TEST(Channel, DedicatedWiresDoNotContend) {
  sim::Simulation sim;
  Channel a(sim, LinkModel{0, 1.0});
  Channel b(sim, LinkModel{0, 1.0});
  SimTime a_at = -1, b_at = -1;
  sim.spawn("rxa", [&] {
    a.receive();
    a_at = sim.now();
  });
  sim.spawn("rxb", [&] {
    b.receive();
    b_at = sim.now();
  });
  sim.spawn("tx", [&] {
    Packet pa;
    pa.body.resize(1000 - 24);
    Packet pb;
    pb.body.resize(1000 - 24);
    a.send(std::move(pa));
    b.send(std::move(pb));
  });
  sim.run();
  EXPECT_EQ(a_at, 1000);
  EXPECT_EQ(b_at, 1000);
}

TEST(Channel, PayloadBytesCostWireTime) {
  sim::Simulation sim;
  Channel ch(sim, LinkModel{0, 1.0});
  SimTime at = -1;
  sim.spawn("rx", [&] {
    ch.receive();
    at = sim.now();
  });
  sim.spawn("tx", [&] {
    Packet p;
    p.payload_bytes = 10'000 - 24;  // bulk memcpy data, not in the body
    ch.send(std::move(p));
  });
  sim.run();
  EXPECT_EQ(at, 10'000);
}

TEST(RpcClient, CallRoundTrip) {
  sim::Simulation sim;
  DuplexChannel ch(sim, LinkModel::shared_memory());
  sim.spawn_daemon("server", [&] {
    while (true) {
      Packet req = ch.request.receive();
      Unmarshal u(req.body);
      const std::uint64_t x = u.get_u64();
      Marshal m;
      m.put_u64(x * 2);
      Packet resp;
      resp.seq = req.seq;
      resp.body = std::move(m).take();
      ch.response.send(std::move(resp));
    }
  });
  std::uint64_t got = 0;
  sim.spawn("client", [&] {
    RpcClient client(ch);
    Marshal args;
    args.put_u64(21);
    Unmarshal u(client.call(CallId::kLaunch, std::move(args)));
    got = u.get_u64();
  });
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(RpcClient, PostIsNonBlocking) {
  sim::Simulation sim;
  DuplexChannel ch(sim, LinkModel::gigabit_ethernet());
  SimTime after_post = -1;
  int received = 0;
  sim.spawn_daemon("server", [&] {
    while (true) {
      Packet req = ch.request.receive();
      EXPECT_TRUE(req.oneway);
      ++received;
    }
  });
  sim.spawn("client", [&] {
    RpcClient client(ch);
    client.post(CallId::kMemcpyAsync, Marshal{});
    after_post = sim.now();
  });
  sim.run();
  EXPECT_EQ(after_post, 0);  // did not wait for delivery
  EXPECT_EQ(received, 1);
}

TEST(RpcClient, MixedPostAndCallKeepOrder) {
  sim::Simulation sim;
  DuplexChannel ch(sim, LinkModel::shared_memory());
  std::vector<CallId> server_order;
  sim.spawn_daemon("server", [&] {
    while (true) {
      Packet req = ch.request.receive();
      server_order.push_back(req.call);
      if (!req.oneway) {
        Packet resp;
        resp.seq = req.seq;
        ch.response.send(std::move(resp));
      }
    }
  });
  sim.spawn("client", [&] {
    RpcClient client(ch);
    client.post(CallId::kConfigureCall, Marshal{});
    client.post(CallId::kLaunch, Marshal{});
    client.call(CallId::kDeviceSynchronize, Marshal{});
  });
  sim.run();
  ASSERT_EQ(server_order.size(), 3u);
  EXPECT_EQ(server_order[0], CallId::kConfigureCall);
  EXPECT_EQ(server_order[1], CallId::kLaunch);
  EXPECT_EQ(server_order[2], CallId::kDeviceSynchronize);
}

// ---- kDstDelta wire format ----------------------------------------------

TEST(DeltaCodec, EmptyDeltaRoundTrips) {
  // A zero-op delta is legal on the wire (base == new): decoders must not
  // assume ops is non-empty.
  core::DstDelta d;
  d.base_version = 17;
  d.new_version = 17;
  d.taken_at = sim::msec(3);
  Marshal m;
  core::encode_delta(m, d);
  Unmarshal u(std::move(m).take());
  const core::DstDelta out = core::decode_delta(u);
  EXPECT_EQ(out.base_version, 17u);
  EXPECT_EQ(out.new_version, 17u);
  EXPECT_EQ(out.taken_at, sim::msec(3));
  EXPECT_TRUE(out.ops.empty());
  EXPECT_TRUE(u.done());
}

TEST(DeltaCodec, BindUnbindOpsRoundTripAtMaxGid) {
  // GIDs at the extremes of the representable range (a max-GPU pool) must
  // survive the i32 encoding, as must the applied_by origin tag.
  const core::Gid max_gid = std::numeric_limits<core::Gid>::max();
  core::DstDelta d;
  d.base_version = std::numeric_limits<std::uint64_t>::max() - 2;
  d.new_version = d.base_version + 2;
  core::DeltaOp bind;
  bind.kind = core::DeltaOp::Kind::kBind;
  bind.gid = max_gid;
  bind.app_type = "MC";
  bind.applied_by = 3;
  core::DeltaOp unbind;
  unbind.kind = core::DeltaOp::Kind::kUnbind;
  unbind.gid = 0;
  unbind.app_type = "";
  unbind.applied_by = -1;
  d.ops = {bind, unbind};

  Marshal m;
  core::encode_delta(m, d);
  Unmarshal u(std::move(m).take());
  const core::DstDelta out = core::decode_delta(u);
  ASSERT_EQ(out.ops.size(), 2u);
  EXPECT_EQ(out.base_version, d.base_version);
  EXPECT_EQ(out.new_version, d.new_version);
  EXPECT_EQ(out.ops[0].kind, core::DeltaOp::Kind::kBind);
  EXPECT_EQ(out.ops[0].gid, max_gid);
  EXPECT_EQ(out.ops[0].app_type, "MC");
  EXPECT_EQ(out.ops[0].applied_by, 3);
  EXPECT_EQ(out.ops[1].kind, core::DeltaOp::Kind::kUnbind);
  EXPECT_EQ(out.ops[1].gid, 0);
  EXPECT_EQ(out.ops[1].app_type, "");
  EXPECT_EQ(out.ops[1].applied_by, -1);
  EXPECT_TRUE(u.done());
}

TEST(DeltaCodec, FeedbackOpCarriesTheFullRecord) {
  core::DstDelta d;
  d.base_version = 4;
  d.new_version = 5;
  core::DeltaOp op;
  op.kind = core::DeltaOp::Kind::kFeedback;
  op.feedback.app_type = "BS";
  op.feedback.exec_time_s = 2.5;
  op.feedback.gpu_time_s = 1.25;
  op.feedback.transfer_time_s = 0.5;
  op.feedback.mem_bw_gbps = 42.0;
  op.feedback.gpu_util = 0.9;
  op.feedback.gid = 2;
  d.ops.push_back(op);

  Marshal m;
  core::encode_delta(m, d);
  Unmarshal u(std::move(m).take());
  const core::DstDelta out = core::decode_delta(u);
  ASSERT_EQ(out.ops.size(), 1u);
  EXPECT_EQ(out.ops[0].kind, core::DeltaOp::Kind::kFeedback);
  EXPECT_EQ(out.ops[0].feedback.app_type, "BS");
  EXPECT_DOUBLE_EQ(out.ops[0].feedback.exec_time_s, 2.5);
  EXPECT_DOUBLE_EQ(out.ops[0].feedback.mem_bw_gbps, 42.0);
  EXPECT_EQ(out.ops[0].feedback.gid, 2);
  EXPECT_TRUE(u.done());
}

TEST(DeltaCodec, UnknownOpKindThrows) {
  core::DstDelta d;
  d.base_version = 0;
  d.new_version = 1;
  d.ops.emplace_back();
  Marshal m;
  core::encode_delta(m, d);
  auto buf = std::move(m).take();
  // The op kind byte sits right after the two u64 versions, the i64
  // timestamp, and the u32 op count.
  buf[8 + 8 + 8 + 4] = static_cast<std::byte>(0x7F);
  Unmarshal u(std::move(buf));
  EXPECT_THROW(core::decode_delta(u), DecodeError);
}

TEST(SnapshotCodec, SparseTableWithFillerRowsRoundTrips) {
  // A DST built via load_row (the decode path itself) can hold gid = -1
  // filler rows below the highest loaded gid. Encoding such a table and
  // decoding it again used to cast the -1 to a huge index; it must instead
  // drop the fillers and keep the real rows intact.
  core::DstSnapshot s;
  s.version = 9;
  core::DeviceStatus row;
  row.gid = 2;
  row.weight = 1.5;
  row.load = 3;
  row.total_bound = 7;
  s.dst.load_row(row);  // rows 0 and 1 become gid = -1 fillers
  s.bound_types = {{}, {}, {"MC", "MC", "MC"}};

  Marshal m;
  core::encode_snapshot(m, s);
  Unmarshal u(std::move(m).take());
  const core::DstSnapshot out = core::decode_snapshot(u);
  ASSERT_EQ(out.dst.rows().size(), 3u);
  EXPECT_EQ(out.dst.row(0).gid, -1);
  EXPECT_EQ(out.dst.row(1).gid, -1);
  EXPECT_EQ(out.dst.row(2).gid, 2);
  EXPECT_EQ(out.dst.row(2).load, 3);
  EXPECT_EQ(out.dst.row(2).total_bound, 7);
  EXPECT_DOUBLE_EQ(out.dst.row(2).weight, 1.5);
  EXPECT_EQ(out.bound_types, s.bound_types);
  EXPECT_TRUE(u.done());
}

TEST(CallIds, NamesAreStable) {
  EXPECT_STREQ(call_name(CallId::kSetDevice), "cudaSetDevice");
  EXPECT_STREQ(call_name(CallId::kFeedback), "strings.feedback");
  EXPECT_STREQ(call_name(CallId::kDstSubscribe), "strings.dstSubscribe");
  EXPECT_STREQ(call_name(CallId::kDstDelta), "strings.dstDelta");
  EXPECT_STREQ(call_name(static_cast<CallId>(99999)), "unknown");
}

}  // namespace
}  // namespace strings::rpc
