// Tests for Design II (single master thread per GPU) — the paper's Fig. 5
// middle option — including its documented shortcoming: a blocking call
// made on behalf of one application stalls every application the master
// serves. SST mitigates (device sync becomes stream sync) but D2H copies
// still block the master.
#include <gtest/gtest.h>

#include "backend/backend_daemon.hpp"
#include "gpu/device_props.hpp"
#include "simcore/simulation.hpp"

namespace strings::backend {
namespace {

using cuda::cudaError_t;
using cuda::cudaMemcpyKind;
using rpc::CallId;
using sim::msec;
using sim::SimTime;

constexpr std::size_t kMB = 1u << 20;

struct Fixture {
  explicit Fixture(bool convert_device_sync = true) {
    auto props = gpu::tesla_c2050();
    props.copy_latency = 0;
    props.crowding_alpha = 0;
    devices.push_back(std::make_unique<gpu::GpuDevice>(sim, 0, props));
    rt = std::make_unique<cuda::CudaRuntime>(
        sim, std::vector<gpu::GpuDevice*>{devices[0].get()});
    BackendConfig cfg;
    cfg.design = Design::kSingleMaster;
    cfg.packer.convert_device_sync = convert_device_sync;
    daemon = std::make_unique<BackendDaemon>(sim, 0, *rt,
                                             std::vector<core::Gid>{0}, cfg);
  }
  rpc::RpcClient connect(std::uint64_t app_id) {
    AppDescriptor app;
    app.app_id = app_id;
    app.app_type = "T" + std::to_string(app_id);
    app.tenant = "T";
    return rpc::RpcClient(
        daemon->connect(app, 0, rpc::LinkModel::shared_memory()));
  }
  sim::Simulation sim;
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::unique_ptr<cuda::CudaRuntime> rt;
  std::unique_ptr<BackendDaemon> daemon;
};

cuda::KernelLaunch kernel(SimTime dur) {
  return {"k", gpu::KernelDesc{dur, 0.4, 0.0}};
}

TEST(Design2, AppsShareOneContextViaStreams) {
  Fixture f;
  int done = 0;
  for (int a = 1; a <= 2; ++a) {
    f.sim.spawn("app" + std::to_string(a), [&f, &done, a] {
      auto client = f.connect(static_cast<std::uint64_t>(a));
      rpc::Unmarshal l(
          client.call(CallId::kLaunch, encode_launch(kernel(msec(20)))));
      EXPECT_EQ(l.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
      rpc::Unmarshal s(client.call(CallId::kDeviceSynchronize, rpc::Marshal{}));
      EXPECT_EQ(s.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
      client.call(CallId::kThreadExit, rpc::Marshal{});
      ++done;
    });
  }
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f.devices[0]->counters().context_switches, 0);
  EXPECT_EQ(f.devices[0]->counters().kernels_completed, 2);
}

TEST(Design2, BlockingD2HStallsOtherApps) {
  // App 1 does a big synchronous D2H (master blocks on the stream sync
  // inside MOT's D2H path); app 2's tiny kernel launch, sent while the
  // master is blocked, has to wait even though the compute engine is idle.
  Fixture f;
  SimTime app2_launch_acked = -1;
  f.sim.spawn("app1", [&f] {
    auto client = f.connect(1);
    rpc::Unmarshal m(client.call(CallId::kMalloc, encode_malloc(120 * kMB)));
    ASSERT_EQ(m.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
    const cuda::DevPtr ptr = m.get_u64();
    // 120 MB D2H at 6 GB/s = 20ms of master-blocking time.
    client.call(CallId::kMemcpy,
                encode_memcpy(ptr, 120'000'000,
                              cudaMemcpyKind::cudaMemcpyDeviceToHost));
    client.call(CallId::kThreadExit, rpc::Marshal{});
  });
  f.sim.spawn("app2", [&f, &app2_launch_acked] {
    auto client = f.connect(2);
    f.sim.wait_for(msec(1));  // arrive while app1's D2H is in flight
    rpc::Unmarshal l(
        client.call(CallId::kLaunch, encode_launch(kernel(msec(1)))));
    EXPECT_EQ(l.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
    app2_launch_acked = f.sim.now();
    client.call(CallId::kThreadExit, rpc::Marshal{});
  });
  f.sim.run();
  // The ack could only come after app1's ~20ms copy released the master.
  EXPECT_GE(app2_launch_acked, msec(19));
}

TEST(Design2, ThreadPerAppDoesNotStall) {
  // Same scenario under Design III: app2's launch is acked immediately.
  sim::Simulation sim;
  auto props = gpu::tesla_c2050();
  props.copy_latency = 0;
  props.crowding_alpha = 0;
  auto dev = std::make_unique<gpu::GpuDevice>(sim, 0, props);
  cuda::CudaRuntime rt(sim, {dev.get()});
  BackendConfig cfg;
  cfg.design = Design::kThreadPerApp;
  BackendDaemon daemon(sim, 0, rt, {0}, cfg);

  SimTime app2_launch_acked = -1;
  sim.spawn("app1", [&] {
    AppDescriptor app;
    app.app_id = 1;
    rpc::RpcClient client(
        daemon.connect(app, 0, rpc::LinkModel::shared_memory()));
    rpc::Unmarshal m(client.call(CallId::kMalloc, encode_malloc(120 * kMB)));
    const cuda::DevPtr ptr = m.get_u64();
    client.call(CallId::kMemcpy,
                encode_memcpy(ptr, 120'000'000,
                              cudaMemcpyKind::cudaMemcpyDeviceToHost));
    client.call(CallId::kThreadExit, rpc::Marshal{});
  });
  sim.spawn("app2", [&] {
    AppDescriptor app;
    app.app_id = 2;
    rpc::RpcClient client(
        daemon.connect(app, 0, rpc::LinkModel::shared_memory()));
    sim.wait_for(msec(1));
    rpc::Unmarshal l(
        client.call(CallId::kLaunch, encode_launch(kernel(msec(1)))));
    EXPECT_EQ(l.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
    app2_launch_acked = sim.now();
    client.call(CallId::kThreadExit, rpc::Marshal{});
  });
  sim.run();
  EXPECT_LT(app2_launch_acked, msec(5));
}

TEST(Design2, SstNarrowsTheSyncBarrierScope) {
  // App 2 launches a 100ms kernel and goes quiet; app 1 launches a 20ms
  // kernel and calls cudaDeviceSynchronize. With SST the sync waits only
  // for app 1's own stream (~21ms); without SST it is a context-wide
  // barrier that also waits for app 2's kernel (~100ms). (Either way the
  // master thread is blocked while waiting — Design II's flaw, shown in
  // BlockingD2HStallsOtherApps.)
  auto sync_time = [](bool sst) {
    Fixture f(/*convert_device_sync=*/sst);
    SimTime sync_done = -1;
    f.sim.spawn("app2-long", [&f] {
      auto client = f.connect(2);
      client.call(CallId::kLaunch, encode_launch(kernel(msec(100))));
      f.sim.wait_for(msec(200));  // quiet until well after app1 finishes
      client.call(CallId::kThreadExit, rpc::Marshal{});
    });
    f.sim.spawn("app1-short", [&f, &sync_done] {
      auto client = f.connect(1);
      f.sim.wait_for(msec(1));
      client.call(CallId::kLaunch, encode_launch(kernel(msec(20))));
      client.call(CallId::kDeviceSynchronize, rpc::Marshal{});
      sync_done = f.sim.now();
      client.call(CallId::kThreadExit, rpc::Marshal{});
    });
    f.sim.run();
    return sync_done;
  };
  const SimTime with_sst = sync_time(true);
  const SimTime without_sst = sync_time(false);
  EXPECT_GE(with_sst, msec(20));
  EXPECT_LT(with_sst, msec(60));
  EXPECT_GE(without_sst, msec(95));
}

}  // namespace
}  // namespace strings::backend
