// Control-plane refactor tests: the distributed Affinity Mapper
// (PlacementService + per-node MapperAgents) must reproduce the centralized
// mapper exactly when the control plane costs nothing, degrade only within
// the configured staleness bound otherwise, and deliver every feedback
// record regardless of batching.
#include <gtest/gtest.h>

#include "core/control_plane.hpp"
#include "core/placement_service.hpp"
#include "workloads/service.hpp"
#include "workloads/testbed.hpp"

namespace strings::workloads {
namespace {

using core::ControlPlaneConfig;
using core::ControlPlaneStats;
using core::ControlTransport;
using core::PlacementMode;

// ---- wire-format round trips -------------------------------------------

TEST(ControlPlaneCodec, SnapshotRoundTrip) {
  core::GMap gmap;
  gmap.add_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
  gmap.add_node(1, {gpu::quadro4000()});
  core::DstSnapshot s;
  s.version = 42;
  s.taken_at = sim::msec(17);
  s.dst = core::DeviceStatusTable(gmap);
  s.dst.on_bind(1);
  s.dst.on_bind(1);
  s.dst.on_bind(2);
  s.bound_types = {{}, {"MC", "DC"}, {"BO"}};
  core::FeedbackRecord rec;
  rec.app_type = "MC";
  rec.exec_time_s = 1.5;
  rec.gpu_time_s = 1.0;
  rec.transfer_time_s = 0.25;
  rec.mem_bw_gbps = 30.0;
  rec.gpu_util = 0.8;
  rec.gid = 1;
  s.sft.update(rec);
  s.sft.update(rec);

  rpc::Marshal m;
  core::encode_snapshot(m, s);
  rpc::Unmarshal u(std::move(m).take());
  const core::DstSnapshot d = core::decode_snapshot(u);

  EXPECT_EQ(d.version, 42u);
  EXPECT_EQ(d.taken_at, sim::msec(17));
  ASSERT_EQ(d.dst.rows().size(), 3u);
  for (core::Gid g = 0; g < 3; ++g) {
    EXPECT_EQ(d.dst.row(g).load, s.dst.row(g).load) << g;
    EXPECT_DOUBLE_EQ(d.dst.row(g).weight, s.dst.row(g).weight) << g;
  }
  EXPECT_EQ(d.bound_types, s.bound_types);
  EXPECT_EQ(d.sft.samples("MC"), 2);
  EXPECT_DOUBLE_EQ(d.sft.lookup("MC")->exec_time_s, 1.5);
}

TEST(ControlPlaneCodec, ParseNames) {
  EXPECT_EQ(core::parse_placement_mode("distributed"),
            PlacementMode::kDistributed);
  EXPECT_EQ(core::parse_control_transport("Data_Plane"),
            ControlTransport::kDataPlane);
  EXPECT_THROW(core::parse_placement_mode("federated"), std::invalid_argument);
  EXPECT_THROW(core::parse_control_transport("carrier-pigeon"),
               std::invalid_argument);
}

// ---- deployment equivalence --------------------------------------------

std::vector<ArrivalConfig> mixed_streams() {
  ArrivalConfig a;
  a.app = "MC";
  a.origin = 0;
  a.requests = 6;
  a.lambda_scale = 0.4;
  a.seed = 7;
  a.tenant = "tenantA";
  ArrivalConfig b;
  b.app = "BS";
  b.origin = 1;
  b.requests = 6;
  b.lambda_scale = 0.4;
  b.seed = 11;
  b.tenant = "tenantB";
  return {a, b};
}

/// Runs the supernode scenario under `cp` and returns the authoritative
/// placement log (global decision order) plus the merged agent counters.
ControlPlaneStats run_supernode(const ControlPlaneConfig& cp,
                                const std::string& balancing = "GWtMin",
                                const std::string& feedback = "",
                                bool shared_network = false) {
  sim::Simulation sim;
  TestbedConfig cfg;
  cfg.mode = Mode::kStrings;
  cfg.nodes = supernode();
  cfg.balancing_policy = balancing;
  cfg.feedback_policy = feedback;
  cfg.shared_network = shared_network;
  cfg.control_plane = cp;
  Testbed bed(sim, cfg);
  auto stats = run_streams(bed, mixed_streams());
  for (const auto& st : stats) {
    EXPECT_EQ(st.completed, 6) << st.app;
    EXPECT_EQ(st.errors, 0) << st.app;
  }
  return bed.control_plane_stats();
}

TEST(ControlPlaneEquivalence, ZeroCostChannelsMatchDirectOracle) {
  ControlPlaneConfig oracle;
  oracle.transport = ControlTransport::kDirect;
  ControlPlaneConfig channels;
  channels.transport = ControlTransport::kZeroCost;

  const ControlPlaneStats a = run_supernode(oracle, "GWtMin", "MBF");
  const ControlPlaneStats b = run_supernode(channels, "GWtMin", "MBF");

  // Bit-for-bit: same (app, gid) placements in the same global order.
  EXPECT_EQ(a.placements, b.placements);
  // The oracle path never touches a channel; the channel path always does.
  EXPECT_GT(a.direct_calls, 0);
  EXPECT_EQ(a.select_rpcs, 0);
  EXPECT_GT(b.select_rpcs, 0);
  EXPECT_GT(b.bytes_sent, 0u);
}

TEST(ControlPlaneEquivalence, DistributedFreshMatchesCentralized) {
  // refresh_epoch = 0 forces a DST sync before every select, so agents
  // always decide on the service's current state. For stateless policies
  // the decisions must match the centralized deployment exactly.
  ControlPlaneConfig central;
  central.placement = PlacementMode::kCentralized;
  ControlPlaneConfig dist;
  dist.placement = PlacementMode::kDistributed;
  dist.refresh_epoch = 0;

  const ControlPlaneStats a = run_supernode(central, "GMin");
  const ControlPlaneStats b = run_supernode(dist, "GMin");
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_GT(b.sync_rpcs, 0);
  EXPECT_EQ(b.stale_hits, 0);
  // Bind reports ride one-way messages instead of select round-trips.
  EXPECT_EQ(b.select_rpcs, 0);
  EXPECT_GT(b.oneway_msgs, 0);
}

TEST(ControlPlaneStaleness, SnapshotAgeStaysWithinRefreshEpoch) {
  ControlPlaneConfig dist;
  dist.placement = PlacementMode::kDistributed;
  dist.refresh_epoch = sim::msec(250);

  const ControlPlaneStats s = run_supernode(dist, "GMin");
  EXPECT_GT(s.stale_hits, 0);
  EXPECT_LT(s.max_snapshot_age, sim::msec(250));
  // Stale selects skip the sync round-trip entirely.
  ControlPlaneConfig fresh = dist;
  fresh.refresh_epoch = 0;
  const ControlPlaneStats f = run_supernode(fresh, "GMin");
  EXPECT_LT(s.sync_rpcs, f.sync_rpcs);
}

TEST(ControlPlaneStaleness, PlacementsDivergeOnlyViaStaleSnapshots) {
  // A very generous staleness bound may change placements, but the run
  // still completes and binds only valid devices.
  ControlPlaneConfig dist;
  dist.placement = PlacementMode::kDistributed;
  dist.refresh_epoch = sim::sec(1000);
  const ControlPlaneStats s = run_supernode(dist, "GMin");
  EXPECT_EQ(s.sync_rpcs, 2);  // one initial pull per active node
  for (const auto& [app, gid] : s.placements) {
    EXPECT_GE(gid, 0);
    EXPECT_LT(gid, 4);
  }
}

// ---- data-plane transport ----------------------------------------------

TEST(ControlPlaneTransport, DataPlaneRunsOnSharedNetwork) {
  ControlPlaneConfig dp;
  dp.transport = ControlTransport::kDataPlane;
  const ControlPlaneStats s = run_supernode(dp, "GMin", "", true);
  EXPECT_GT(s.select_rpcs, 0);
  EXPECT_GT(s.bytes_sent, 0u);
  // Control packets now pay real latency: placements take non-zero time
  // from the remote node (the service lives on node 0).
  sim::SimTime max_latency = 0;
  for (const sim::SimTime t : s.placement_latencies) {
    max_latency = std::max(max_latency, t);
  }
  EXPECT_GT(max_latency, 0);
}

TEST(ControlPlaneTransport, ServiceNodePlacementValidated) {
  sim::Simulation sim;
  TestbedConfig cfg;
  cfg.nodes = small_server();
  cfg.control_plane.service_node = 5;
  EXPECT_THROW(Testbed bed(sim, cfg), std::invalid_argument);
}

// ---- feedback batching -------------------------------------------------

TEST(ControlPlaneFeedback, BatchedReportsAllReachTheService) {
  ControlPlaneConfig batched;
  batched.placement = PlacementMode::kDistributed;
  batched.feedback_batch_size = 4;
  // Records complete seconds apart, so a short flush delay would emit
  // singleton batches; a long delay lets the size trigger dominate.
  batched.feedback_max_delay = sim::sec(100);

  sim::Simulation sim;
  TestbedConfig cfg;
  cfg.mode = Mode::kStrings;
  cfg.nodes = supernode();
  cfg.balancing_policy = "GWtMin";
  cfg.feedback_policy = "MBF";
  cfg.control_plane = batched;
  Testbed bed(sim, cfg);
  auto stats = run_streams(bed, mixed_streams());
  for (const auto& st : stats) {
    EXPECT_EQ(st.completed, 6) << st.app;
    EXPECT_EQ(st.errors, 0) << st.app;
  }
  const ControlPlaneStats s = bed.control_plane_stats();
  // Every completed request produced one feedback record; batching may
  // coalesce them but must not drop any.
  EXPECT_EQ(s.feedback_records, 12);
  EXPECT_LT(s.feedback_batches, s.feedback_records);
  EXPECT_EQ(bed.mapper().sft().samples("MC"), 6);
  EXPECT_EQ(bed.mapper().sft().samples("BS"), 6);
}

TEST(ControlPlaneFeedback, UnbatchedFeedbackFlushesImmediately) {
  ControlPlaneConfig cp;
  cp.placement = PlacementMode::kDistributed;
  cp.feedback_batch_size = 1;
  const ControlPlaneStats s = run_supernode(cp, "GWtMin", "MBF");
  EXPECT_EQ(s.feedback_records, 12);
  EXPECT_EQ(s.feedback_batches, s.feedback_records);
}

// ---- direct service API (oracle, no simulation context) ----------------

TEST(PlacementServiceDirect, SnapshotVersionTracksMutations) {
  core::PlacementService::Config cfg;
  cfg.static_policy = "GMin";
  core::PlacementService svc(cfg);
  svc.report_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
  svc.finalize();
  const std::uint64_t v0 = svc.version();
  const core::Gid g = svc.select_device("MC", 0);
  EXPECT_GT(svc.version(), v0);
  const core::DstSnapshot snap = svc.snapshot(sim::msec(3));
  EXPECT_EQ(snap.version, svc.version());
  EXPECT_EQ(snap.taken_at, sim::msec(3));
  EXPECT_EQ(snap.dst.row(g).load, 1);
  svc.unbind(g, "MC");
  EXPECT_GT(svc.version(), snap.version);
  EXPECT_EQ(svc.dst().row(g).load, 0);
}

}  // namespace
}  // namespace strings::workloads
