// Unit tests for workload-balancing and device-scheduling policies as pure
// decision logic.
#include "policies/balancing.hpp"
#include "policies/device_policies.hpp"

#include <gtest/gtest.h>

#include "core/dst_snapshot.hpp"
#include "core/gpool.hpp"
#include "core/tables.hpp"

namespace strings::policies {
namespace {

using core::FeedbackRecord;
using core::Gid;
using sim::msec;

// Two-node, four-GPU supernode mirroring the paper's testbed.
struct MapperFixture {
  MapperFixture() {
    gmap.add_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
    gmap.add_node(1, {gpu::quadro4000(), gpu::tesla_c2070()});
    view.dst = core::DeviceStatusTable(gmap);
    view.bound_types.assign(4, {});
  }
  BalanceInput input(const std::string& app = "MC", core::NodeId origin = 0) {
    BalanceInput in;
    in.gmap = &gmap;
    in.view = &view;
    in.app_type = app;
    in.origin_node = origin;
    return in;
  }
  void bind(Gid gid, const std::string& app) {
    view.dst.on_bind(gid);
    view.bound_types[static_cast<std::size_t>(gid)].push_back(app);
  }
  FeedbackRecord record(const std::string& app, double exec_s, double util,
                        double transfer_s, double bw) {
    FeedbackRecord r;
    r.app_type = app;
    r.exec_time_s = exec_s;
    r.gpu_time_s = exec_s * util;
    r.gpu_util = util;
    r.transfer_time_s = transfer_s;
    r.mem_bw_gbps = bw;
    return r;
  }
  core::GMap gmap;
  core::DstSnapshot view;
};

TEST(GrrPolicy, CyclesThroughAllGpus) {
  MapperFixture f;
  GrrPolicy p;
  EXPECT_EQ(p.select(f.input()), 0);
  EXPECT_EQ(p.select(f.input()), 1);
  EXPECT_EQ(p.select(f.input()), 2);
  EXPECT_EQ(p.select(f.input()), 3);
  EXPECT_EQ(p.select(f.input()), 0);
}

TEST(GMinPolicy, PicksLeastLoaded) {
  MapperFixture f;
  f.bind(0, "A");
  f.bind(0, "A");
  f.bind(1, "A");
  GMinPolicy p;
  // Loads: 2,1,0,0. GIDs 2 and 3 tie; origin node 1 makes both local;
  // lower gid wins.
  EXPECT_EQ(p.select(f.input("A", 1)), 2);
}

TEST(GMinPolicy, BreaksTiesPreferringLocalGpus) {
  MapperFixture f;
  GMinPolicy p;
  // All loads 0. From node 1, the local GPUs are gids 2 and 3.
  EXPECT_EQ(p.select(f.input("A", 1)), 2);
  EXPECT_EQ(p.select(f.input("A", 0)), 0);
}

TEST(GWtMinPolicy, AccountsForDeviceWeight) {
  MapperFixture f;
  // gid 0 = Quadro 2000 (weight .47), gid 1 = Tesla C2050 (weight 1.0).
  f.bind(0, "A");
  f.bind(1, "A");
  GWtMinPolicy p;
  // Post-placement scores: g0 (1+1)/.47=4.26, g1 2/1=2, g2 1/.48=2.08,
  // g3 1/1=1 -> gid 3 (the idle fast Tesla beats the idle slow Quadro).
  EXPECT_EQ(p.select(f.input("A", 0)), 3);
  f.bind(3, "A");
  // Scores: 4.26, 2, 2.08, 2 -> tie g1/g3 at 2; local (origin 0) wins.
  EXPECT_EQ(p.select(f.input("A", 0)), 1);
}

TEST(GWtMinPolicy, DoesNotDumpOnIdleSlowExecutor) {
  // A CPU pseudo-device (weight 0.05) must only win when every GPU queue
  // is ~20 deep.
  core::GMap gmap;
  auto cpu = gpu::cpu_executor();
  gmap.add_node(0, {gpu::tesla_c2050(), cpu});
  core::DstSnapshot view;
  view.dst = core::DeviceStatusTable(gmap);
  view.bound_types.resize(2);
  BalanceInput in;
  in.gmap = &gmap;
  in.view = &view;
  in.app_type = "A";
  GWtMinPolicy p;
  for (int i = 0; i < 19; ++i) {
    EXPECT_EQ(p.select(in), 0) << "request " << i;
    view.dst.on_bind(0);
  }
  // GPU score (19+1)/1 = 20 == CPU 1/0.05; tie-break: lower load wins (CPU).
  EXPECT_EQ(p.select(in), 1);
}

TEST(RtfPolicy, UsesMeasuredRuntimes) {
  MapperFixture f;
  f.view.sft.update(f.record("LONG", 50.0, 0.8, 0.1, 100));
  f.view.sft.update(f.record("SHORT", 2.0, 0.8, 0.1, 100));
  // gid 3 hosts a long app, gid 2 a short one; equal loads.
  f.bind(3, "LONG");
  f.bind(2, "SHORT");
  f.bind(0, "LONG");
  f.bind(1, "LONG");
  RtfPolicy p;
  // Device queues (exec time sums): g0=50/.47, g1=50, g2=2/.48, g3=50.
  EXPECT_EQ(p.select(f.input("SHORT", 0)), 2);
}

TEST(GufPolicy, AvoidsCollocatingHighUtilizationApps) {
  MapperFixture f;
  f.view.sft.update(f.record("HOG", 10.0, 0.95, 0.1, 100));
  f.view.sft.update(f.record("LIGHT", 10.0, 0.05, 0.1, 100));
  f.bind(0, "HOG");
  f.bind(1, "LIGHT");
  f.bind(2, "HOG");
  f.bind(3, "HOG");
  GufPolicy p;
  // New HOG should land with LIGHT (gid 1).
  EXPECT_EQ(p.select(f.input("HOG", 0)), 1);
}

TEST(DtfPolicy, CollocatesContrastingTransferProfiles) {
  MapperFixture f;
  // Transfer-heavy app: most of exec time in copies, low gpu util.
  f.view.sft.update(f.record("XFER", 10.0, 0.1, 9.0, 100));
  // Compute-heavy app: negligible transfer.
  f.view.sft.update(f.record("COMP", 10.0, 0.9, 0.05, 100));
  f.bind(0, "COMP");
  f.bind(1, "XFER");
  f.bind(2, "COMP");
  f.bind(3, "COMP");
  DtfPolicy p;
  // A new COMP app contrasts most with XFER on gid 1.
  EXPECT_EQ(p.select(f.input("COMP", 0)), 1);
  // A new XFER app contrasts with COMP; similarity lowest on a COMP-only
  // device local to origin 0 -> gid 0.
  EXPECT_EQ(p.select(f.input("XFER", 0)), 0);
}

TEST(MbfPolicy, SpreadsBandwidthBoundApps) {
  MapperFixture f;
  f.view.sft.update(f.record("BWHOG", 10.0, 0.5, 0.1, 130.0));
  f.view.sft.update(f.record("CALM", 10.0, 0.5, 0.1, 1.0));
  f.bind(1, "BWHOG");  // Tesla C2050, 144 GB/s
  f.bind(3, "CALM");   // Tesla C2070, 144 GB/s
  MbfPolicy p;
  // New BWHOG: gid 1 already saturated; gid 3 hosts a calm app. Quadros
  // (41.6 / 89.6 GB/s) are denominator-weaker. Expect gid 3.
  EXPECT_EQ(p.select(f.input("BWHOG", 0)), 3);
}

TEST(FeedbackPolicies, FallBackGracefullyWithoutRecords) {
  MapperFixture f;
  // No SFT rows at all: neutral defaults everywhere; selection must still
  // return a valid GID.
  for (const char* name : {"RTF", "GUF", "DTF", "MBF"}) {
    auto p = make_balancing_policy(name);
    const Gid gid = p->select(f.input("UNKNOWN", 0));
    EXPECT_GE(gid, 0);
    EXPECT_LT(gid, 4);
  }
}

TEST(BalancingFactory, MakesAllPoliciesAndRejectsUnknown) {
  for (const char* name : {"GRR", "GMin", "GWtMin", "RTF", "GUF", "DTF", "MBF"}) {
    auto p = make_balancing_policy(name);
    EXPECT_STREQ(p->name(), name);
  }
  EXPECT_THROW(make_balancing_policy("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------- device --

RcbSnapshot snap(std::uint64_t key, sim::SimTime total, double cgs,
                 Phase phase = Phase::kDefault, bool backlogged = true,
                 sim::SimTime entitled = 0, double weight = 1.0) {
  RcbSnapshot s;
  s.key = key;
  s.total_service = total;
  s.cgs = cgs;
  s.phase = phase;
  s.backlogged = backlogged;
  s.entitled = entitled;
  s.tenant_weight = weight;
  return s;
}

TEST(AllAwakePolicy, WakesEveryone) {
  AllAwakePolicy p;
  auto awake = p.pick_awake({snap(1, 0, 0), snap(2, 0, 0), snap(3, 0, 0)});
  EXPECT_EQ(awake.size(), 3u);
}

TEST(TfsPolicy, WakesLargestDeficit) {
  TfsPolicy p;
  // Entitled 10ms each; app 1 consumed 8ms, app 2 consumed 2ms.
  auto awake = p.pick_awake({snap(1, msec(8), 0, Phase::kDefault, true, msec(10)),
                             snap(2, msec(2), 0, Phase::kDefault, true, msec(10))});
  ASSERT_EQ(awake.size(), 1u);
  EXPECT_EQ(awake[0], 2u);
}

TEST(TfsPolicy, PenalizesOvershootersAcrossEpochs) {
  TfsPolicy p;
  // App 1 overshot: used 30ms against 20ms entitlement. App 2 used 15ms.
  auto awake = p.pick_awake({snap(1, msec(30), 0, Phase::kDefault, true, msec(20)),
                             snap(2, msec(15), 0, Phase::kDefault, true, msec(20))});
  ASSERT_EQ(awake.size(), 1u);
  EXPECT_EQ(awake[0], 2u);
}

TEST(TfsPolicy, SkipsIdleTenants) {
  TfsPolicy p;
  auto awake = p.pick_awake({snap(1, 0, 0, Phase::kDefault, false, msec(50)),
                             snap(2, msec(40), 0, Phase::kDefault, true, msec(10))});
  ASSERT_EQ(awake.size(), 1u);
  EXPECT_EQ(awake[0], 2u);  // work conserving: idle tenant's share unused
}

TEST(TfsPolicy, NoBackloggedMeansNobodyAwake) {
  TfsPolicy p;
  EXPECT_TRUE(p.pick_awake({snap(1, 0, 0, Phase::kDefault, false)}).empty());
}

TEST(LasPolicy, AdmitsLeastAttainedFirst) {
  LasPolicy p;
  auto awake = p.pick_awake({snap(1, msec(50), 5e6), snap(2, msec(50), 1e6),
                             snap(3, msec(50), 3e6), snap(4, msec(50), 9e6)});
  // Top-3 window by least CGS, most-deserving first; the worst hog sleeps.
  ASSERT_EQ(awake.size(), 3u);
  EXPECT_EQ(awake[0], 2u);
  EXPECT_EQ(awake[1], 3u);
  EXPECT_EQ(awake[2], 1u);
}

TEST(LasPolicy, StarvesTheHighestAttainedThread) {
  LasPolicy p;
  auto awake = p.pick_awake({snap(1, 0, 1.0), snap(2, 0, 2.0),
                             snap(3, 0, 3.0), snap(4, 0, 4.0)});
  EXPECT_EQ(awake.size(), 3u);
  EXPECT_TRUE(std::find(awake.begin(), awake.end(), 4u) == awake.end());
}

TEST(LasPolicy, IgnoresIdleThreads) {
  LasPolicy p;
  auto awake = p.pick_awake({snap(1, 0, 0.0, Phase::kDefault, false),
                             snap(2, 0, 9e9, Phase::kDefault, true)});
  ASSERT_EQ(awake.size(), 1u);  // only the backlogged thread is admitted
  EXPECT_EQ(awake[0], 2u);
}

TEST(PsPolicy, PicksOneThreadPerPhase) {
  PsPolicy p;
  auto awake = p.pick_awake({snap(1, 0, 0, Phase::kKernelLaunch),
                             snap(2, 0, 0, Phase::kH2D),
                             snap(3, 0, 0, Phase::kD2H),
                             snap(4, 0, 0, Phase::kKernelLaunch)});
  ASSERT_EQ(awake.size(), 3u);
  EXPECT_TRUE(std::find(awake.begin(), awake.end(), 1u) != awake.end());
  EXPECT_TRUE(std::find(awake.begin(), awake.end(), 2u) != awake.end());
  EXPECT_TRUE(std::find(awake.begin(), awake.end(), 3u) != awake.end());
}

TEST(PsPolicy, FillsMissingPhasesByPriority) {
  PsPolicy p;
  // No D2H thread: the third slot goes to another KL thread (KL > DFL).
  auto awake = p.pick_awake({snap(1, 0, 0, Phase::kKernelLaunch),
                             snap(2, 0, 0, Phase::kH2D),
                             snap(3, 0, 0, Phase::kDefault),
                             snap(4, 0, 0, Phase::kKernelLaunch)});
  ASSERT_EQ(awake.size(), 3u);
  EXPECT_TRUE(std::find(awake.begin(), awake.end(), 4u) != awake.end());
  EXPECT_TRUE(std::find(awake.begin(), awake.end(), 3u) == awake.end());
}

TEST(PsPolicy, PrefersLeastServiceWithinPhase) {
  PsPolicy p;
  auto awake = p.pick_awake({snap(1, msec(90), 0, Phase::kKernelLaunch),
                             snap(2, msec(10), 0, Phase::kKernelLaunch)});
  // Only KL phase present: first slot goes to least-attained (2), then the
  // fill loop adds 1.
  ASSERT_GE(awake.size(), 1u);
  EXPECT_EQ(awake[0], 2u);
}

TEST(PsPolicy, OnlyDefaultPhaseStillWakesUpToThree) {
  PsPolicy p;
  auto awake = p.pick_awake({snap(1, 0, 0, Phase::kDefault),
                             snap(2, 0, 0, Phase::kDefault),
                             snap(3, 0, 0, Phase::kDefault),
                             snap(4, 0, 0, Phase::kDefault)});
  EXPECT_EQ(awake.size(), 3u);
}

TEST(DevicePolicyFactory, MakesAllAndRejectsUnknown) {
  for (const char* name : {"AllAwake", "TFS", "LAS", "PS"}) {
    auto p = make_device_policy(name);
    EXPECT_STREQ(p->name(), name);
  }
  EXPECT_THROW(make_device_policy("bogus"), std::invalid_argument);
}

TEST(PhaseName, AllNamed) {
  EXPECT_STREQ(phase_name(Phase::kKernelLaunch), "KL");
  EXPECT_STREQ(phase_name(Phase::kH2D), "H2D");
  EXPECT_STREQ(phase_name(Phase::kD2H), "D2H");
  EXPECT_STREQ(phase_name(Phase::kDefault), "DFL");
}

}  // namespace
}  // namespace strings::policies
