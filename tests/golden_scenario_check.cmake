# Drives run_scenario on one scenario and pins every artifact byte-for-byte
# against the committed goldens in tests/data/golden/. This is the kernel
# refactor's determinism gate: fibers, the calendar queue, and the flat
# tables may change wall-clock speed, never virtual-time behaviour.
#
# Artifact-specific normalization, mirrored exactly by the regeneration
# recipe in tests/data/golden/ (see docs/simcore.md):
#  - trace.json is pinned by SHA-256 (the file is megabytes);
#  - stdout drops "written to <path>" echo lines (they embed output paths);
#  - analyze reports rewrite `.cpp:<line>` to `.cpp:LINE` (ANALYSIS_SITE
#    embeds __LINE__, which moves on unrelated edits).
#
# Arguments: -DCMD=<run_scenario> -DNAME=<scenario stem>
#            -DSRC_DIR=<repo root> -DWORK_DIR=<scratch dir>
foreach(arg CMD NAME SRC_DIR WORK_DIR)
  if(NOT DEFINED ${arg})
    message(FATAL_ERROR "golden_scenario_check: missing -D${arg}")
  endif()
endforeach()

set(golden_dir "${SRC_DIR}/tests/data/golden")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace "${WORK_DIR}/${NAME}.trace.json")
set(metrics "${WORK_DIR}/${NAME}.metrics.csv")
set(analyze "${WORK_DIR}/${NAME}.analyze.txt")
set(stdout "${WORK_DIR}/${NAME}.stdout.txt")

# The stdout golden echoes the scenario path as given, so invoke with the
# repo-root-relative path from the repo root.
execute_process(
  COMMAND ${CMD} scenarios/${NAME}.scenario
          --trace ${trace} --metrics ${metrics} --analyze ${analyze}
  WORKING_DIRECTORY ${SRC_DIR}
  OUTPUT_FILE ${stdout}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_scenario ${NAME} exited with ${rc}")
endif()

# Trace: SHA-256 against the pinned digest.
file(SHA256 "${trace}" got_sha)
file(READ "${golden_dir}/${NAME}.trace.sha256" want_sha)
string(STRIP "${want_sha}" want_sha)
if(NOT got_sha STREQUAL want_sha)
  message(FATAL_ERROR
    "${NAME}: trace.json diverged\n  got  ${got_sha}\n  want ${want_sha}")
endif()

# Metrics: raw byte compare.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${metrics}" "${golden_dir}/${NAME}.metrics.csv"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${NAME}: metrics.csv diverged from golden")
endif()

# Stdout: drop the "written to" echo lines, then compare.
file(READ "${stdout}" got_out)
string(REGEX REPLACE "[^\n]*written to[^\n]*\n" "" got_out "${got_out}")
file(READ "${golden_dir}/${NAME}.stdout.txt" want_out)
if(NOT got_out STREQUAL want_out)
  message(FATAL_ERROR "${NAME}: stdout diverged from golden")
endif()

# Analyze report: normalize ANALYSIS_SITE line numbers, then compare.
file(READ "${analyze}" got_an)
string(REGEX REPLACE "\\.cpp:[0-9]+" ".cpp:LINE" got_an "${got_an}")
file(READ "${golden_dir}/${NAME}.analyze.txt" want_an)
if(NOT got_an STREQUAL want_an)
  message(FATAL_ERROR "${NAME}: analyze report diverged from golden")
endif()

message(STATUS "${NAME}: all artifacts byte-identical to goldens")
