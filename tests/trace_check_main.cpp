// trace_check: standalone validator for exported observability artifacts,
// used by the CI fixtures (ctest runs `run_scenario --trace`/`--stream`/
// `--slo` on a scenario file, then this tool) and handy for eyeballing
// bench artifacts.
//
//   $ trace_check out.json             # Chrome trace-event JSON
//   $ trace_check --stream out.jsonl   # strings.stream.v1 telemetry lines
//                                      # (+ trailing strings.exemplar.v1
//                                      # lines when recorded --exemplars)
//   $ trace_check --alerts out.jsonl   # strings.alert.v1 SLO alert lines
//   $ trace_check --exemplars out.jsonl  # strings.exemplar.v1 tail lines
//
// Checks, in order:
//   1. the file is syntactically valid JSON (full recursive-descent parse —
//      no dependency on an external JSON library);
//   2. the top level is an object with a "traceEvents" array of objects;
//   3. the expected observability tracks and events are present: per-device
//      compute/copy/dispatch thread names, KL / H2D / D2H op spans,
//      dispatch.wake instants, and at least one request-lifecycle track.
//
// Exits 0 when all checks pass; prints the first failure and exits 1
// otherwise.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

// ---- minimal JSON recursive-descent parser -------------------------------
// Validates syntax and calls out to a sink for every string value so the
// content checks don't need a DOM.

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;
  int depth = 0;
  // Every parsed string, plus (key, value) pairs for object members whose
  // values are strings — enough to find names and track titles.
  std::set<std::string>* strings;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool parse_value() {
    if (++depth > 256) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    bool ok = false;
    const char c = text[pos];
    if (c == '{') {
      ok = parse_object();
    } else if (c == '[') {
      ok = parse_array();
    } else if (c == '"') {
      std::string out;
      ok = parse_string(out);
      if (ok) strings->insert(out);
    } else if (c == 't') {
      ok = parse_literal("true");
    } else if (c == 'f') {
      ok = parse_literal("false");
    } else if (c == 'n') {
      ok = parse_literal("null");
    } else {
      ok = parse_number();
    }
    --depth;
    return ok;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text.compare(pos, n, lit) != 0) return fail("bad literal");
    pos += n;
    return true;
  }

  bool parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected a value");
    return true;
  }

  bool parse_string(std::string& out) {
    if (text[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("bad escape");
        const char e = text[pos];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos + 4 >= text.size()) return fail("bad \\u escape");
            pos += 4;  // validated lexically only; content irrelevant here
            break;
          default: return fail("unknown escape");
        }
        ++pos;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
        ++pos;
      }
    }
    return fail("unterminated string");
  }

  bool parse_object() {
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos >= text.size() || !parse_string(key)) {
        return fail("expected object key");
      }
      strings->insert(key);
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!parse_value()) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array() {
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!parse_value()) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

int check_failed(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), what.c_str());
  return 1;
}

/// One JSONL line: must be a standalone JSON object carrying `schema` and
/// every name in `required`. `strings` collects across lines.
bool check_jsonl_line(const std::string& line, const char* schema,
                      const char* const* required, std::size_t n_required,
                      std::string* why) {
  std::set<std::string> strings;
  Parser p{line, 0, "", 0, &strings};
  if (!p.parse_value()) {
    *why = "invalid JSON: " + p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != line.size()) {
    *why = "trailing garbage after JSON object";
    return false;
  }
  if (line.empty() || line.front() != '{') {
    *why = "line is not a JSON object";
    return false;
  }
  if (strings.count(schema) == 0) {
    *why = std::string("missing schema marker '") + schema + "'";
    return false;
  }
  for (std::size_t i = 0; i < n_required; ++i) {
    if (strings.count(required[i]) == 0) {
      *why = std::string("missing required field '") + required[i] + "'";
      return false;
    }
  }
  return true;
}

/// Validates a line-delimited JSON artifact. Streams must carry at least
/// one window; an alerts file may legitimately be empty (healthy run).
int check_jsonl(const std::string& path, const char* schema,
                const char* const* required, std::size_t n_required,
                bool allow_empty) {
  std::ifstream in(path);
  if (!in) return check_failed(path, "cannot open file");
  std::string line;
  long long lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string why;
    if (!check_jsonl_line(line, schema, required, n_required, &why)) {
      return check_failed(path,
                          "line " + std::to_string(lines) + ": " + why);
    }
  }
  if (lines == 0 && !allow_empty) {
    return check_failed(path, "no JSON lines found");
  }
  std::printf("trace_check: %s OK (%lld %s lines)\n", path.c_str(), lines,
              schema);
  return 0;
}

const char* kExemplarRequired[] = {"id",      "window",   "rank",
                                   "tenant",  "wall_ms",  "buckets",
                                   "culprits", "steps"};

/// Validates a telemetry stream file. A run recorded with --exemplars
/// appends strings.exemplar.v1 lines after the final window; each line is
/// validated against its own schema, and at least one window must exist.
int check_stream(const std::string& path) {
  const char* win_required[] = {"window", "start_ms", "end_ms", "series",
                                "quantiles"};
  std::ifstream in(path);
  if (!in) return check_failed(path, "cannot open file");
  std::string line;
  long long lines = 0;
  long long windows = 0;
  long long exemplars = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string why;
    const bool is_exemplar =
        line.find("\"strings.exemplar.v1\"") != std::string::npos;
    const bool ok =
        is_exemplar
            ? check_jsonl_line(line, "strings.exemplar.v1", kExemplarRequired,
                               8, &why)
            : check_jsonl_line(line, "strings.stream.v1", win_required, 5,
                               &why);
    if (!ok) {
      return check_failed(path, "line " + std::to_string(lines) + ": " + why);
    }
    if (is_exemplar) {
      ++exemplars;
    } else {
      ++windows;
    }
  }
  if (windows == 0) {
    return check_failed(path, "no JSON lines found");
  }
  if (exemplars == 0) {
    std::printf("trace_check: %s OK (%lld strings.stream.v1 lines)\n",
                path.c_str(), windows);
  } else {
    std::printf("trace_check: %s OK (%lld strings.stream.v1 lines, "
                "%lld strings.exemplar.v1 lines)\n",
                path.c_str(), windows, exemplars);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--stream") {
    return check_stream(argv[2]);
  }
  if (argc == 3 && std::string(argv[1]) == "--alerts") {
    const char* required[] = {"rule", "series", "severity", "window",
                              "value", "threshold"};
    return check_jsonl(argv[2], "strings.alert.v1", required, 6,
                       /*allow_empty=*/true);
  }
  if (argc == 3 && std::string(argv[1]) == "--exemplars") {
    // A run whose windows saw no completions derives no exemplars; an
    // empty sidecar is still a valid artifact.
    return check_jsonl(argv[2], "strings.exemplar.v1", kExemplarRequired, 8,
                       /*allow_empty=*/true);
  }
  if (argc != 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: trace_check <trace.json>\n"
                 "       trace_check --stream <stream.jsonl>\n"
                 "       trace_check --alerts <alerts.jsonl>\n"
                 "       trace_check --exemplars <exemplars.jsonl>\n");
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path);
  if (!in) return check_failed(path, "cannot open file");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return check_failed(path, "file is empty");

  std::set<std::string> strings;
  Parser p{text, 0, "", 0, &strings};
  if (!p.parse_value()) return check_failed(path, "invalid JSON: " + p.error);
  p.skip_ws();
  if (p.pos != text.size()) {
    return check_failed(path, "trailing garbage after JSON document");
  }

  // Structural expectations of the object form.
  if (text.rfind("{\"displayTimeUnit\"", 0) != 0) {
    return check_failed(path, "not the object-form Chrome trace");
  }
  if (strings.count("traceEvents") == 0) {
    return check_failed(path, "missing traceEvents");
  }

  // Content expectations: every name the observability layer promises.
  const char* required[] = {
      "process_name", "thread_name",  // metadata present
      "KL", "H2D", "D2H",             // device op spans
      "dispatch.wake",                // dispatcher instants
      "util", "queue_depth",          // sampler counters
  };
  for (const char* name : required) {
    if (strings.count(name) == 0) {
      return check_failed(path, std::string("missing expected name '") +
                                    name + "'");
    }
  }
  // At least one per-device track and one node process were named.
  bool has_compute_track = false, has_node = false, has_request = false;
  for (const auto& s : strings) {
    if (s.find(" compute") != std::string::npos) has_compute_track = true;
    if (s.rfind("node", 0) == 0) has_node = true;
    if (s.rfind("request ", 0) == 0) has_request = true;
  }
  if (!has_compute_track) {
    return check_failed(path, "no per-device compute track");
  }
  if (!has_node) return check_failed(path, "no node process");
  if (!has_request) return check_failed(path, "no request-lifecycle span");

  std::printf("trace_check: %s OK (%zu distinct strings)\n", path.c_str(),
              strings.size());
  return 0;
}
