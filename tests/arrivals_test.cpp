// Open-loop arrival engine: determinism pins, stream independence,
// statistical sanity of the generators, trace-file parsing, and the
// tenant-churn contract (attach/detach leaves no orphaned per-tenant state
// in the scheduler RCBs or the backend connection table).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "workloads/arrivals.hpp"
#include "workloads/scenario_config.hpp"
#include "workloads/testbed.hpp"

namespace strings {
namespace {

using workloads::ArrivalKind;
using workloads::OpenLoopTenant;
using workloads::arrival_schedule;
using workloads::tenant_stream_seed;

// ---- Determinism pins --------------------------------------------------
// The exact values are part of the reproducibility contract: splitmix64 +
// FNV-1a are bit-stable across platforms, so a changed pin means a changed
// experiment, not a changed machine.

TEST(ArrivalsDeterminism, StreamSeedIsBitStable) {
  EXPECT_EQ(tenant_stream_seed(42, "pricing-svc"), 14431085673789168331ull);
  EXPECT_EQ(tenant_stream_seed(42, "pricing-svc"),
            tenant_stream_seed(42, "pricing-svc"));
}

TEST(ArrivalsDeterminism, PoissonScheduleIsBitStable) {
  OpenLoopTenant t;
  t.name = "pin";
  t.seed = 7;
  t.rate_rps = 100.0;
  t.requests = 5;
  const std::vector<sim::SimTime> expect = {3566682, 62895439, 63799630,
                                            68615423, 72350107};
  EXPECT_EQ(arrival_schedule(t), expect);
}

TEST(ArrivalsDeterminism, SameConfigYieldsIdenticalSchedules) {
  OpenLoopTenant t;
  t.name = "svc";
  t.seed = 9;
  t.arrival = ArrivalKind::kBursty;
  t.requests = 200;
  EXPECT_EQ(arrival_schedule(t), arrival_schedule(t));
}

// ---- Stream independence ----------------------------------------------

TEST(ArrivalsIndependence, DifferentTenantNamesDecorrelate) {
  OpenLoopTenant a;
  a.seed = 5;
  a.requests = 50;
  OpenLoopTenant b = a;
  a.name = "tenantA";
  b.name = "tenantB";
  EXPECT_NE(arrival_schedule(a), arrival_schedule(b));
  EXPECT_NE(tenant_stream_seed(5, "tenantA"), tenant_stream_seed(5, "tenantB"));
}

TEST(ArrivalsIndependence, DifferentSeedsDecorrelate) {
  OpenLoopTenant a;
  a.name = "svc";
  a.requests = 50;
  OpenLoopTenant b = a;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(arrival_schedule(a), arrival_schedule(b));
}

// ---- Statistical sanity ------------------------------------------------

TEST(ArrivalsStats, PoissonEmpiricalRateMatchesConfigured) {
  OpenLoopTenant t;
  t.name = "stat";
  t.seed = 11;
  t.rate_rps = 200.0;  // mean gap 5 ms
  t.requests = 20000;
  const auto s = arrival_schedule(t);
  ASSERT_EQ(s.size(), 20000u);
  const double mean_gap_ms =
      static_cast<double>(s.back()) / 1e6 / static_cast<double>(s.size());
  // Mean of 20k exponential gaps: sigma = 5ms/sqrt(20000) ~ 0.035ms, so a
  // +-5% band is ~7 sigma — fails only if the generator is actually wrong.
  EXPECT_GT(mean_gap_ms, 4.75);
  EXPECT_LT(mean_gap_ms, 5.25);
}

TEST(ArrivalsStats, SchedulesAreStrictlyIncreasing) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    OpenLoopTenant t;
    t.name = "mono";
    t.seed = 13;
    t.arrival = kind;
    t.requests = 500;
    const auto s = arrival_schedule(t);
    for (std::size_t i = 1; i < s.size(); ++i) {
      ASSERT_GT(s[i], s[i - 1]) << "at index " << i;
    }
  }
}

TEST(ArrivalsStats, BurstyRunsHotterThanItsBaseRate) {
  // The MMPP's ON state multiplies the base rate, so over the same request
  // count the bursty schedule must finish earlier than a pure-Poisson one
  // with the same base rate (statistically certain at this sample size).
  OpenLoopTenant p;
  p.name = "hot";
  p.seed = 17;
  p.rate_rps = 50.0;
  p.requests = 2000;
  OpenLoopTenant b = p;
  b.arrival = ArrivalKind::kBursty;
  b.burst_factor = 8.0;
  EXPECT_LT(arrival_schedule(b).back(), arrival_schedule(p).back());
}

// ---- Churn windows -----------------------------------------------------

TEST(ArrivalsChurn, AttachDetachWindowBoundsEverySchedule) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    OpenLoopTenant t;
    t.name = "windowed";
    t.seed = 19;
    t.arrival = kind;
    t.rate_rps = 300.0;
    t.requests = 100000;  // cap on requests, not on the window
    t.attach_at = sim::msec(250);
    t.detach_at = sim::msec(750);
    const auto s = arrival_schedule(t);
    ASSERT_FALSE(s.empty());
    EXPECT_GT(s.front(), t.attach_at);
    EXPECT_LT(s.back(), t.detach_at);
  }
}

TEST(ArrivalsChurn, InvalidWindowsThrow) {
  OpenLoopTenant t;
  t.name = "bad";
  t.attach_at = sim::msec(100);
  t.detach_at = sim::msec(100);
  EXPECT_THROW(arrival_schedule(t), std::invalid_argument);
  t.detach_at = -1;
  t.requests = 0;
  EXPECT_THROW(arrival_schedule(t), std::invalid_argument);
  t.requests = 10;
  t.rate_rps = 0.0;
  EXPECT_THROW(arrival_schedule(t), std::invalid_argument);
}

// ---- Trace files -------------------------------------------------------

TEST(ArrivalsTrace, ParsesOffsetsSkipsCommentsAppliesWindow) {
  const std::string path = ::testing::TempDir() + "arrivals_trace.txt";
  {
    std::ofstream out(path);
    out << "# replayed from production logs\n"
        << "0.5\n"
        << "\n"
        << "  2.25\n"
        << "10\n"
        << "999\n";
  }
  OpenLoopTenant t;
  t.name = "replay";
  t.arrival = ArrivalKind::kTrace;
  t.trace_file = path;
  t.attach_at = sim::msec(1);
  t.detach_at = sim::msec(500);
  t.requests = 10;
  const auto s = arrival_schedule(t);
  // 999 ms lands past detach (1 + 999 >= 500); the rest shift by attach_at.
  const std::vector<sim::SimTime> expect = {
      sim::msec(1) + 500000, sim::msec(1) + 2250000, sim::msec(1) + 10000000};
  EXPECT_EQ(s, expect);
  std::remove(path.c_str());
}

TEST(ArrivalsTrace, MissingFileAndBadOffsetsThrow) {
  OpenLoopTenant t;
  t.name = "replay";
  t.arrival = ArrivalKind::kTrace;
  t.trace_file = "/nonexistent/arrivals.txt";
  EXPECT_THROW(arrival_schedule(t), std::runtime_error);

  const std::string path = ::testing::TempDir() + "arrivals_bad.txt";
  {
    std::ofstream out(path);
    out << "1.0\nnot-a-number\n";
  }
  t.trace_file = path;
  EXPECT_THROW(arrival_schedule(t), std::runtime_error);
  std::remove(path.c_str());
}

// ---- Churn leaves no orphaned state ------------------------------------

TEST(ArrivalsChurnEndToEnd, DetachLeavesNoOrphanedRcbsOrConnections) {
  workloads::TestbedConfig tcfg;
  tcfg.mode = workloads::Mode::kStrings;
  tcfg.device_policy = "MQFQ";
  OpenLoopTenant churn;
  churn.name = "churn-svc";
  churn.app = "GA";
  churn.rate_rps = 10.0;
  churn.requests = 8;
  churn.attach_at = sim::msec(100);
  churn.detach_at = sim::sec(2);
  churn.seed = 23;
  OpenLoopTenant steady = churn;
  steady.name = "steady-svc";
  steady.attach_at = 0;
  steady.detach_at = -1;
  steady.requests = 6;
  steady.seed = 24;

  sim::Simulation sim;
  workloads::Testbed bed(sim, tcfg);
  const auto stats = workloads::run_open_loop(bed, {churn, steady});
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].completed, 0);
  EXPECT_EQ(stats[1].completed, 6);

  // Every short-lived request attached and detached: after the drain no
  // RCB may stay registered and no backend connection may stay alive.
  for (core::NodeId node = 0; node < 1; ++node) {
    backend::BackendDaemon& daemon = bed.daemon(node);
    EXPECT_EQ(daemon.live_connections(), 0u) << "node " << node;
    for (int dev = 0; dev < daemon.device_count(); ++dev) {
      EXPECT_EQ(daemon.scheduler(dev).registered_count(), 0)
          << "node " << node << " device " << dev;
    }
  }
}

TEST(ArrivalsChurnEndToEnd, AnalyzerFindsNoViolationsUnderChurn) {
  const char* text = R"(mode = strings
topology = small
device_policy = mqfq
mqfq_T = 25
analyze = true

[tenant]
name = churny
app = GA
rate = 12
requests = 6
attach_ms = 50
detach_ms = 1500
seed = 31

[tenant]
name = steady
app = BS
rate = 2
requests = 4
seed = 32
)";
  const workloads::ScenarioConfig cfg = workloads::parse_scenario(text);
  workloads::RunArtifacts artifacts;
  artifacts.analysis_path = ::testing::TempDir() + "churn_analysis.txt";
  const workloads::ScenarioRunResult result =
      workloads::run_scenario_config_full(cfg, artifacts);
  EXPECT_EQ(result.invariant_violations, 0);
  ASSERT_EQ(result.streams.size(), 2u);
  EXPECT_GT(result.streams[0].completed, 0);
  EXPECT_EQ(result.streams[1].completed, 4);
  std::remove(artifacts.analysis_path.c_str());
}

// ---- Scenario parser surface ------------------------------------------

TEST(ArrivalsScenario, TenantSectionsParse) {
  const char* text = R"(mode = strings
device_policy = mqfq
mqfq_T = 15
mqfq_sticky_ms = 3

[tenant]
name = burst-svc
app = MC
arrival = bursty
rate = 120
burst_factor = 8
burst_on_ms = 200
burst_off_ms = 800
requests = 400
attach_ms = 0
detach_ms = 1500
seed = 7
weight = 2.0
)";
  const workloads::ScenarioConfig cfg = workloads::parse_scenario(text);
  EXPECT_EQ(cfg.testbed.device_policy, "mqfq");
  EXPECT_EQ(cfg.testbed.mqfq.throttle_T, sim::msec(15));
  EXPECT_EQ(cfg.testbed.mqfq.sticky_window, sim::msec(3));
  ASSERT_EQ(cfg.tenants.size(), 1u);
  const OpenLoopTenant& t = cfg.tenants[0];
  EXPECT_EQ(t.name, "burst-svc");
  EXPECT_EQ(t.app, "MC");
  EXPECT_EQ(t.arrival, ArrivalKind::kBursty);
  EXPECT_DOUBLE_EQ(t.rate_rps, 120.0);
  EXPECT_DOUBLE_EQ(t.burst_factor, 8.0);
  EXPECT_EQ(t.burst_on, sim::msec(200));
  EXPECT_EQ(t.burst_off, sim::msec(800));
  EXPECT_EQ(t.requests, 400);
  EXPECT_EQ(t.attach_at, 0);
  EXPECT_EQ(t.detach_at, sim::msec(1500));
  EXPECT_EQ(t.seed, 7u);
  EXPECT_DOUBLE_EQ(t.weight, 2.0);
}

TEST(ArrivalsScenario, BadTenantKeysThrow) {
  EXPECT_THROW(
      workloads::parse_scenario("[tenant]\nnot_a_key = 1\n"),
      workloads::ScenarioParseError);
  // Unknown app is validated at parse time (same contract as [stream]).
  EXPECT_THROW(workloads::parse_scenario("[tenant]\napp = NOPE\n"),
               std::invalid_argument);
  EXPECT_THROW(workloads::parse_scenario("mqfq_T = -1\n"),
               workloads::ScenarioParseError);
  EXPECT_THROW(
      workloads::parse_scenario(
          "[tenant]\napp = GA\narrival = trace\n"),
      workloads::ScenarioParseError);
}

}  // namespace
}  // namespace strings
