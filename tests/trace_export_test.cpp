// End-to-end observability tests: runs real scenarios through the testbed
// with tracing enabled and checks (a) the request-lifecycle records, (b)
// the exported Chrome trace and metrics CSV, and (c) that instrumentation
// is behavior-neutral — a traced run produces bit-for-bit identical
// scheduling results to an untraced one.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"
#include "workloads/scenario_config.hpp"
#include "workloads/service.hpp"
#include "workloads/testbed.hpp"

namespace strings {
namespace {

// Mirrors scenarios/distributed_mapper.scenario, scaled down for test time.
const char kDistributedScenario[] = R"(
mode = strings
topology = supernode
balancing = GWtMin
feedback = MBF
shared_network = true
placement = distributed
control_transport = data_plane
service_node = 0
refresh_epoch_ms = 10000
trace = true

[stream]
app = MC
origin = 0
requests = 4
lambda_scale = 0.35
server_threads = 4
tenant = pricing-svc

[stream]
app = BS
origin = 1
requests = 4
lambda_scale = 0.35
server_threads = 4
tenant = options-svc
)";

struct TracedScenario {
  TracedScenario() {
    cfg = workloads::parse_scenario(std::string(kDistributedScenario));
    bed = std::make_unique<workloads::Testbed>(sim, cfg.testbed);
    stats = workloads::run_streams(*bed, cfg.streams);
  }
  sim::Simulation sim;
  workloads::ScenarioConfig cfg;
  std::unique_ptr<workloads::Testbed> bed;
  std::vector<workloads::StreamStats> stats;
};

TEST(TraceExport, RequestLifecyclesAreComplete) {
  TracedScenario run;
  obs::Tracer* tracer = run.bed->tracer();
  ASSERT_NE(tracer, nullptr);
  ASSERT_EQ(tracer->requests().size(), 8u);  // 4 MC + 4 BS
  for (const auto& [app_id, r] : tracer->requests()) {
    SCOPED_TRACE("app_id=" + std::to_string(app_id));
    EXPECT_GE(r.issued_at, 0);
    EXPECT_GE(r.completed_at, r.issued_at);
    EXPECT_EQ(r.count(obs::ReqPhase::kIssue), 1);
    EXPECT_EQ(r.count(obs::ReqPhase::kComplete), 1);
    EXPECT_GE(r.count(obs::ReqPhase::kBind), 1);
    EXPECT_GT(r.count(obs::ReqPhase::kMarshal), 0);
    EXPECT_GT(r.count(obs::ReqPhase::kBackendQueue), 0);
    EXPECT_GT(r.count(obs::ReqPhase::kExecute), 0);
    // Steps append in execution order, which under non-blocking RPC is not
    // timestamp order (the frontend pipelines ahead of backend delivery) —
    // but every phase lies within the request's lifetime envelope.
    for (const auto& s : r.steps) {
      EXPECT_GE(s.at, r.issued_at);
      EXPECT_LE(s.at, r.completed_at);
    }
    // First step is issue; last is complete.
    ASSERT_GE(r.steps.size(), 2u);
    EXPECT_EQ(r.steps.front().phase, obs::ReqPhase::kIssue);
    EXPECT_EQ(r.steps.back().phase, obs::ReqPhase::kComplete);
  }
}

TEST(TraceExport, DeviceAndNetworkTracksPopulated) {
  TracedScenario run;
  obs::Tracer* tracer = run.bed->tracer();
  ASSERT_NE(tracer, nullptr);
  // All 4 supernode GPUs registered with compute/copy/dispatch tracks.
  for (int gid = 0; gid < run.bed->gpu_count(); ++gid) {
    EXPECT_TRUE(tracer->has_gpu(gid)) << "gid " << gid;
  }
  int kernels = 0, copies = 0, wakes = 0, net_spans = 0, samples = 0;
  std::ostringstream names;
  for (const auto& t : tracer->tracks()) names << t.name << '\n';
  const std::string track_names = names.str();
  EXPECT_NE(track_names.find("compute"), std::string::npos);
  EXPECT_NE(track_names.find("dispatch"), std::string::npos);
  EXPECT_NE(track_names.find("n0->n1"), std::string::npos);
  for (const auto& e : tracer->events()) {
    if (e.name == "KL") ++kernels;
    if (e.name == "H2D" || e.name == "D2H") ++copies;
    if (e.name == "dispatch.wake") ++wakes;
    if (e.name == "util") ++samples;
    if (e.name.rfind("strings.", 0) == 0 &&
        e.type == obs::Tracer::EventType::kComplete) {
      ++net_spans;
    }
  }
  EXPECT_GT(kernels, 0);
  EXPECT_GT(copies, 0);
  EXPECT_GT(wakes, 0);
  EXPECT_GT(net_spans, 0);  // rpc::Channel packet spans on link tracks
  EXPECT_GT(samples, 0);    // periodic sampler ran on the weak-event path
}

TEST(TraceExport, RegistryCoversAllSubsystems) {
  TracedScenario run;
  obs::Registry& reg = run.bed->metrics_registry();
  EXPECT_TRUE(reg.contains("control_plane/service/rpcs_served"));
  EXPECT_TRUE(reg.contains("control_plane/agent0/select_rpcs"));
  EXPECT_TRUE(reg.contains("control_plane/agent1/placement_latency_ms"));
  EXPECT_TRUE(reg.contains("node0/daemon/wire_bytes"));
  EXPECT_TRUE(reg.contains("node0/gpu0/sched/wakes"));
  EXPECT_TRUE(reg.contains("node1/gpu2/dev/compute_busy_ms"));
  // The gauges poll live component counters: traffic actually flowed.
  EXPECT_GT(reg.gauge("node0/daemon/wire_bytes").value(), 0.0);
  // Distributed placement decides locally and posts one-way bind reports
  // (select_rpcs stays 0 — that's the centralized path's counter).
  EXPECT_GT(reg.gauge("control_plane/agent0/oneway_msgs").value(), 0.0);
  // Agents observed one placement latency per select.
  const auto& h = reg.histogram("control_plane/agent0/placement_latency_ms",
                                obs::default_latency_buckets_ms());
  EXPECT_GT(h.count(), 0);
}

TEST(TraceExport, FilesWrittenViaRunScenarioConfig) {
  const std::string trace_path = ::testing::TempDir() + "/obs_e2e.trace.json";
  const std::string metrics_path = ::testing::TempDir() + "/obs_e2e.metrics.csv";
  auto cfg = workloads::parse_scenario(std::string(kDistributedScenario));
  cfg.testbed.trace = false;  // the overload must force it back on
  const auto stats =
      workloads::run_scenario_config(cfg, trace_path, metrics_path);
  ASSERT_EQ(stats.size(), 2u);
  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.good());
  std::stringstream trace;
  trace << tf.rdbuf();
  const std::string json = trace.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dispatch.wake"), std::string::npos);
  EXPECT_NE(json.find("\"KL\""), std::string::npos);
  EXPECT_NE(json.find("pricing-svc"), std::string::npos);
  std::ifstream mf(metrics_path);
  ASSERT_TRUE(mf.good());
  std::string header;
  std::getline(mf, header);
  EXPECT_EQ(header, "metric,field,value");
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(TraceExport, UnwritablePathThrows) {
  auto cfg = workloads::parse_scenario(std::string(kDistributedScenario));
  EXPECT_THROW(workloads::run_scenario_config(
                   cfg, "/nonexistent-dir/x.json", ""),
               std::runtime_error);
}

// The acceptance pin: instrumentation must not perturb the simulation.
// Identical seeds with tracing on and off must produce identical virtual
// timelines — every response time equal to the nanosecond.
TEST(TraceExport, TracingIsBehaviorNeutral) {
  auto run_with = [](bool trace) {
    auto cfg = workloads::parse_scenario(std::string(kDistributedScenario));
    cfg.testbed.trace = trace;
    return workloads::run_scenario_config(cfg);
  };
  const auto off = run_with(false);
  const auto on = run_with(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].completed, on[i].completed);
    EXPECT_EQ(off[i].errors, on[i].errors);
    EXPECT_EQ(off[i].makespan, on[i].makespan);
    ASSERT_EQ(off[i].response_times.size(), on[i].response_times.size());
    for (std::size_t j = 0; j < off[i].response_times.size(); ++j) {
      EXPECT_EQ(off[i].response_times[j], on[i].response_times[j])
          << "stream " << i << " request " << j;
    }
  }
}

}  // namespace
}  // namespace strings
