// Tests for the simulation synchronization primitives (Semaphore, Barrier,
// Latch).
#include "simcore/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace strings::sim {
namespace {

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int inside = 0, peak = 0, done = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn("w" + std::to_string(i), [&] {
      SemaphoreGuard guard(sem);
      peak = std::max(peak, ++inside);
      sim.wait_for(msec(10));
      --inside;
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, TryAcquireNonBlocking) {
  Simulation sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, FifoWakeOrder) {
  Simulation sim;
  Semaphore sem(sim, 0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("w" + std::to_string(i), [&sem, &order, i] {
      sem.acquire();
      order.push_back(i);
    });
  }
  sim.schedule(msec(1), [&] { sem.release(); });
  sim.schedule(msec(2), [&] { sem.release(); });
  sim.schedule(msec(3), [&] { sem.release(); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Barrier, ReleasesAllAtOnce) {
  Simulation sim;
  Barrier barrier(sim, 3);
  std::vector<SimTime> released;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("w" + std::to_string(i), [&sim, &barrier, &released, i] {
      sim.wait_for(msec(10 * (i + 1)));  // staggered arrivals
      barrier.arrive_and_wait();
      released.push_back(sim.now());
    });
  }
  sim.run();
  ASSERT_EQ(released.size(), 3u);
  for (const SimTime t : released) EXPECT_EQ(t, msec(30));
}

TEST(Barrier, CyclesAcrossRounds) {
  Simulation sim;
  Barrier barrier(sim, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn("w" + std::to_string(i), [&sim, &barrier, &rounds_done, i] {
      for (int round = 0; round < 3; ++round) {
        sim.wait_for(msec(i + 1));
        barrier.arrive_and_wait();
      }
      ++rounds_done;
    });
  }
  sim.run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(Latch, ReleasesWhenCountReachesZero) {
  Simulation sim;
  Latch latch(sim, 3);
  SimTime released_at = -1;
  sim.spawn("waiter", [&] {
    latch.wait();
    released_at = sim.now();
  });
  for (int i = 1; i <= 3; ++i) {
    sim.schedule(msec(i), [&] { latch.count_down(); });
  }
  sim.run();
  EXPECT_EQ(released_at, msec(3));
  EXPECT_EQ(latch.remaining(), 0);
}

TEST(Latch, WaitAfterZeroReturnsImmediately) {
  Simulation sim;
  Latch latch(sim, 1);
  latch.count_down();
  bool ran = false;
  sim.spawn("w", [&] {
    latch.wait();
    ran = true;
  });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

}  // namespace
}  // namespace strings::sim
