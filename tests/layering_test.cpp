// Keeps tools/layering.rules honest against the real src/ tree, in both
// directions:
//
//  1. Every layer named in the rules is a real src/<layer> subsystem with a
//     CMake target, and every non-header-only `allow from -> to` edge is
//     backed by a target_link_libraries path from strings_<from> to
//     strings_<to> (directly or transitively). A rules edge with no link
//     path would let includes outrun the build graph.
//  2. Running strings_lint --layering-summary over src/ must report zero
//     violations AND zero unused allows: the DAG is exactly the set of
//     include edges the code actually has — no drift in either direction.
//
// STRINGS_LINT_BIN and STRINGS_SOURCE_DIR come from tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

std::string source(const std::string& rel) {
  return std::string(STRINGS_SOURCE_DIR) + "/" + rel;
}

struct AllowEdge {
  std::string from;
  std::string to;
  bool header_only = false;
};

std::vector<AllowEdge> load_rules(const std::string& path) {
  std::vector<AllowEdge> edges;
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string kw, from, arrow, to, attr;
    if (!(ss >> kw) || kw != "allow") continue;
    ss >> from >> arrow >> to >> attr;
    EXPECT_EQ(arrow, "->") << "malformed rules line: " << line;
    edges.push_back({from, to, attr == "header-only"});
  }
  return edges;
}

// Direct link deps per layer, from `target_link_libraries(strings_<layer>
// ... strings_<dep> ...)` in src/<layer>/CMakeLists.txt.
std::map<std::string, std::set<std::string>> load_link_graph(
    const std::set<std::string>& layers) {
  std::map<std::string, std::set<std::string>> deps;
  for (const std::string& layer : layers) {
    std::ifstream in(source("src/" + layer + "/CMakeLists.txt"));
    EXPECT_TRUE(static_cast<bool>(in))
        << "layer '" << layer << "' in layering.rules has no src/" << layer
        << "/CMakeLists.txt";
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string call = "target_link_libraries(strings_" + layer;
    const std::size_t at = text.find(call);
    if (at == std::string::npos) continue;
    const std::size_t close = text.find(')', at);
    std::istringstream args(text.substr(at + call.size(),
                                        close - at - call.size()));
    std::string tok;
    while (args >> tok) {
      if (tok.rfind("strings_", 0) == 0) deps[layer].insert(tok.substr(8));
    }
  }
  return deps;
}

bool link_reachable(const std::map<std::string, std::set<std::string>>& deps,
                    const std::string& from, const std::string& to) {
  std::set<std::string> seen;
  std::vector<std::string> stack = {from};
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = deps.find(cur);
    if (it == deps.end()) continue;
    for (const std::string& d : it->second) {
      if (d == to) return true;
      stack.push_back(d);
    }
  }
  return false;
}

TEST(Layering, EveryRuleLayerIsARealSubsystem) {
  const std::vector<AllowEdge> edges = load_rules(source("tools/layering.rules"));
  ASSERT_FALSE(edges.empty());
  std::set<std::string> layers;
  for (const auto& e : edges) {
    layers.insert(e.from);
    layers.insert(e.to);
  }
  for (const std::string& layer : layers) {
    std::ifstream in(source("src/" + layer + "/CMakeLists.txt"));
    EXPECT_TRUE(static_cast<bool>(in))
        << "layering.rules names layer '" << layer
        << "' but src/" << layer << " is not a CMake subsystem";
  }
}

TEST(Layering, AllowEdgesAreBackedByTheCmakeLinkGraph) {
  const std::vector<AllowEdge> edges = load_rules(source("tools/layering.rules"));
  std::set<std::string> layers;
  for (const auto& e : edges) {
    layers.insert(e.from);
    layers.insert(e.to);
  }
  const auto deps = load_link_graph(layers);

  int header_only = 0;
  for (const auto& e : edges) {
    if (e.header_only) {
      ++header_only;
      // A header-only edge is the explicit exception: the include exists but
      // the link edge must NOT (otherwise drop the attribute).
      EXPECT_FALSE(link_reachable(deps, e.from, e.to))
          << "allow " << e.from << " -> " << e.to << " is marked header-only "
          << "but strings_" << e.to << " is link-reachable from strings_"
          << e.from << " — remove the header-only attribute";
      continue;
    }
    EXPECT_TRUE(link_reachable(deps, e.from, e.to))
        << "allow " << e.from << " -> " << e.to << " has no "
        << "target_link_libraries path from strings_" << e.from
        << " to strings_" << e.to;
  }
  // The one sanctioned include-only edge today: policies -> core.
  EXPECT_EQ(header_only, 1);
}

TEST(Layering, SrcTreeMatchesTheDagExactly) {
  const std::string out = testing::TempDir() + "src_layering_summary.txt";
  const std::string cmd = std::string(STRINGS_LINT_BIN) + " --layering " +
                          source("tools/layering.rules") +
                          " --layering-summary " + out + " " + source("src") +
                          " 2>&1";
  FILE* p = popen(cmd.c_str(), "r");
  ASSERT_NE(p, nullptr);
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), p)) > 0) output.append(buf, got);
  const int status = pclose(p);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;

  std::ifstream in(out);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ASSERT_FALSE(text.empty());
  // No include edge outside the DAG, and no allow edge the code stopped
  // using — the rules file tracks reality exactly.
  EXPECT_NE(text.find("violations=0 unused_allows=0"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("VIOLATION"), std::string::npos) << text;
  EXPECT_EQ(text.find("unused-allow"), std::string::npos) << text;

  // Spot-pin the anomalous edge: policies include core (header-only) while
  // core LINKS policies — both directions must stay visible to the tool.
  EXPECT_NE(text.find("edge policies core uses="), std::string::npos) << text;
  EXPECT_NE(text.find("edge core policies uses="), std::string::npos) << text;
}

}  // namespace
