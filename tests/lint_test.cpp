// Pins strings_lint's observable contract: exact rule-id/file/line for every
// corpus fixture, NOLINT suppression semantics (honored + unused reported),
// baseline gating (clean / findings / regression exit codes, stale-entry
// warnings), and SARIF 2.1.0 well-formedness.
//
// The binary under test and the corpus root come in as compile definitions
// (STRINGS_LINT_BIN, LINT_CORPUS_DIR) from tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <tuple>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(STRINGS_LINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), p)) > 0) r.output.append(buf, got);
  const int status = pclose(p);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string corpus(const std::string& rel = "") {
  std::string p = LINT_CORPUS_DIR;
  if (!rel.empty()) p += "/" + rel;
  return p;
}

std::string with_layering(const std::string& tail) {
  return "--layering " + corpus("layering.rules") + " " + tail;
}

// A reported finding: (rule, path, line), parsed from `path:line: [DLxxx]`.
using Finding = std::tuple<std::string, std::string, int>;

std::vector<Finding> parse_findings(const std::string& out) {
  std::vector<Finding> v;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    const std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t br = line.find(": [DL");
    if (br == std::string::npos) continue;
    const std::size_t colon = line.rfind(':', br - 1);
    if (colon == std::string::npos) continue;
    const std::string path = line.substr(0, colon);
    const int ln = std::atoi(line.substr(colon + 1, br - colon - 1).c_str());
    const std::size_t close = line.find(']', br);
    const std::string rule = line.substr(br + 3, close - br - 3);
    v.emplace_back(rule, path, ln);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (same recursive-descent pattern as trace_check): just
// enough to verify the SARIF report structurally.
// ---------------------------------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    static const Json kMissing;
    auto it = obj.find(key);
    return it == obj.end() ? kMissing : it->second;
  }
};

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }

  Json value() {
    ws();
    Json v;
    if (!ok || i >= s.size()) {
      ok = false;
      return v;
    }
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = Json::kString;
      v.str = string();
      return v;
    }
    if (s.compare(i, 4, "true") == 0) {
      v.kind = Json::kBool;
      v.b = true;
      i += 4;
      return v;
    }
    if (s.compare(i, 5, "false") == 0) {
      v.kind = Json::kBool;
      i += 5;
      return v;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      return v;
    }
    // number
    std::size_t end = i;
    while (end < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[end])) != 0 ||
            s[end] == '-' || s[end] == '+' || s[end] == '.' ||
            s[end] == 'e' || s[end] == 'E')) {
      ++end;
    }
    if (end == i) {
      ok = false;
      return v;
    }
    v.kind = Json::kNumber;
    v.num = std::atof(s.substr(i, end - i).c_str());
    i = end;
    return v;
  }

  std::string string() {
    std::string out;
    if (!eat('"')) return out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        const char e = s[i + 1];
        i += 2;
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': i += 4; out += '?'; break;
          default: out += e;
        }
      } else {
        out += s[i++];
      }
    }
    if (!eat('"')) ok = false;
    return out;
  }

  Json object() {
    Json v;
    v.kind = Json::kObject;
    eat('{');
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return v;
    }
    while (ok) {
      const std::string key = string();
      eat(':');
      v.obj[key] = value();
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    eat('}');
    return v;
  }

  Json array() {
    Json v;
    v.kind = Json::kArray;
    eat('[');
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return v;
    }
    while (ok) {
      v.arr.push_back(value());
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    eat(']');
    return v;
  }
};

Json parse_json_file(const std::string& path, bool* ok) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonParser p(text);
  Json v = p.value();
  p.ws();
  *ok = p.ok && !text.empty() && p.i == text.size();
  return v;
}

// ---------------------------------------------------------------------------
// Corpus: exact rule/file/line for every positive, silence for every negative.
// ---------------------------------------------------------------------------

TEST(LintCorpus, EveryRuleFiresAtItsPinnedLocationAndNowhereElse) {
  const RunResult r = run(with_layering(corpus()));
  EXPECT_EQ(r.exit_code, 1) << r.output;

  std::vector<Finding> expected = {
      {"DL001", "lint_corpus/dl001_pos.cpp", 4},
      {"DL001", "lint_corpus/dl001_pos.cpp", 5},
      {"DL002", "lint_corpus/dl002_pos.cpp", 5},
      {"DL002", "lint_corpus/dl002_pos.cpp", 6},
      {"DL003", "lint_corpus/dl003_pos.cpp", 5},
      {"DL004", "lint_corpus/dl004_pos.cpp", 6},
      {"DL004", "lint_corpus/dl004_pos.cpp", 7},
      {"DL005", "lint_corpus/dl005_pos.cpp", 2},
      {"DL005", "lint_corpus/dl005_pos.cpp", 2},  // __DATE__ and __TIME__
      {"DL006", "lint_corpus/src/c/dl006_pos.cpp", 3},
      {"DL007", "lint_corpus/src/x/dl007_pos.cpp", 3},
      {"DL008", "lint_corpus/src/obs/dl008_pos.cpp", 7},
      {"DL009", "lint_corpus/dl009_pos.cpp", 14},
      {"DL010", "lint_corpus/dl010_pos.cpp", 14},
      {"DL011", "lint_corpus/src/x/dl011_pos.cpp", 4},
      {"DL012", "lint_corpus/dl012_pos.cpp", 5},
  };
  std::vector<Finding> got = parse_findings(r.output);
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << r.output;

  // No negative fixture may produce a finding of any kind.
  for (const auto& f : got) {
    EXPECT_EQ(std::get<1>(f).find("_neg"), std::string::npos)
        << "negative fixture flagged: " << std::get<1>(f);
  }
  EXPECT_NE(r.output.find("16 finding(s) (0 baselined, 16 new)"),
            std::string::npos)
      << r.output;
}

TEST(LintCorpus, ReferenceAcrossEraseBugClassIsCaughtByDl009) {
  // The PR 6 GpuScheduler::unregister_app pattern, verbatim in the fixture:
  // a typed reference into a FlatMap used after erase() of the same map.
  const RunResult r = run(corpus("dl009_pos.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[DL009]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("used after erase()"), std::string::npos)
      << r.output;
  // The doctrine-approved shapes (copy-out-first, iterator re-seat) pass.
  const RunResult ok = run(corpus("dl009_neg.cpp"));
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

// ---------------------------------------------------------------------------
// NOLINT suppression semantics.
// ---------------------------------------------------------------------------

TEST(LintNolint, SuppressionOnAdjacentLineIsHonored) {
  const RunResult r = run(corpus("dl012_neg.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("[DL003]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 file(s) clean"), std::string::npos) << r.output;
}

TEST(LintNolint, UnusedSuppressionIsItselfAFinding) {
  const RunResult r = run(corpus("dl012_pos.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[DL012]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("suppresses nothing"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("[DL003]"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// Baseline gating.
// ---------------------------------------------------------------------------

TEST(LintBaseline, FullBaselineTurnsFindingsIntoCleanExitZero) {
  const std::string base = testing::TempDir() + "lint_full_baseline.txt";
  const RunResult w =
      run(with_layering("--write-baseline " + base + " " + corpus()));
  ASSERT_EQ(w.exit_code, 0) << w.output;
  EXPECT_NE(w.output.find("wrote 16 baseline entries"), std::string::npos)
      << w.output;

  const RunResult r = run(with_layering("--baseline " + base + " " + corpus()));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("27 file(s) clean (16 baselined finding(s))"),
            std::string::npos)
      << r.output;
}

TEST(LintBaseline, NewFindingBeyondBaselineExitsThree) {
  const std::string base = testing::TempDir() + "lint_partial_baseline.txt";
  const RunResult w =
      run("--write-baseline " + base + " " + corpus("dl001_pos.cpp"));
  ASSERT_EQ(w.exit_code, 0) << w.output;

  const RunResult r = run("--baseline " + base + " " + corpus("dl001_pos.cpp") +
                          " " + corpus("dl003_pos.cpp"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  // Old findings print as baselined; only the DL003 one is new.
  EXPECT_NE(r.output.find("[DL001] (baselined)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[DL003]"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("[DL003] (baselined)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("3 finding(s) (2 baselined, 1 new)"),
            std::string::npos)
      << r.output;
}

TEST(LintBaseline, StaleEntriesAreWarnedButDoNotFail) {
  const std::string base = testing::TempDir() + "lint_stale_baseline.txt";
  const RunResult w =
      run("--write-baseline " + base + " " + corpus("dl001_pos.cpp"));
  ASSERT_EQ(w.exit_code, 0) << w.output;

  // Scan a clean file against that baseline: both entries are now stale.
  const RunResult r =
      run("--baseline " + base + " " + corpus("dl001_neg.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("stale baseline entry"), std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------------
// SARIF output.
// ---------------------------------------------------------------------------

TEST(LintSarif, ReportIsWellFormedAndMirrorsTheFindings) {
  const std::string out = testing::TempDir() + "lint_corpus.sarif";
  const RunResult r = run(with_layering("--sarif " + out + " " + corpus()));
  EXPECT_EQ(r.exit_code, 1) << r.output;

  bool ok = false;
  const Json doc = parse_json_file(out, &ok);
  ASSERT_TRUE(ok) << "SARIF is not valid JSON";
  EXPECT_EQ(doc.at("version").str, "2.1.0");
  ASSERT_EQ(doc.at("runs").arr.size(), 1u);
  const Json& run0 = doc.at("runs").arr[0];
  const Json& driver = run0.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").str, "strings_lint");
  ASSERT_EQ(driver.at("rules").arr.size(), 12u);  // DL001..DL012
  for (int i = 0; i < 12; ++i) {
    char id[8];
    std::snprintf(id, sizeof(id), "DL%03d", i + 1);
    EXPECT_EQ(driver.at("rules").arr[i].at("id").str, id);
  }

  const std::vector<Json>& results = run0.at("results").arr;
  ASSERT_EQ(results.size(), 16u);
  bool saw_dl009 = false;
  for (const Json& res : results) {
    EXPECT_FALSE(res.at("ruleId").str.empty());
    EXPECT_EQ(res.at("level").str, "error");  // nothing baselined here
    EXPECT_FALSE(res.at("message").at("text").str.empty());
    ASSERT_EQ(res.at("locations").arr.size(), 1u);
    const Json& loc = res.at("locations").arr[0].at("physicalLocation");
    EXPECT_FALSE(loc.at("artifactLocation").at("uri").str.empty());
    EXPECT_GT(loc.at("region").at("startLine").num, 0);
    if (res.at("ruleId").str == "DL009") {
      saw_dl009 = true;
      EXPECT_EQ(loc.at("artifactLocation").at("uri").str,
                "lint_corpus/dl009_pos.cpp");
      EXPECT_EQ(loc.at("region").at("startLine").num, 14);
    }
  }
  EXPECT_TRUE(saw_dl009);
}

TEST(LintSarif, BaselinedFindingsDowngradeToSuppressedNotes) {
  const std::string base = testing::TempDir() + "lint_sarif_baseline.txt";
  ASSERT_EQ(
      run(with_layering("--write-baseline " + base + " " + corpus()))
          .exit_code,
      0);
  const std::string out = testing::TempDir() + "lint_baselined.sarif";
  const RunResult r = run(with_layering("--baseline " + base + " --sarif " +
                                        out + " " + corpus()));
  EXPECT_EQ(r.exit_code, 0) << r.output;

  bool ok = false;
  const Json doc = parse_json_file(out, &ok);
  ASSERT_TRUE(ok);
  const std::vector<Json>& results = doc.at("runs").arr[0].at("results").arr;
  ASSERT_EQ(results.size(), 16u);
  for (const Json& res : results) {
    EXPECT_EQ(res.at("level").str, "note");
    ASSERT_EQ(res.at("suppressions").arr.size(), 1u);
    EXPECT_EQ(res.at("suppressions").arr[0].at("kind").str, "external");
  }
}

// ---------------------------------------------------------------------------
// Layering summary on the corpus rules: the violation and the unused allow
// both surface in the machine-readable file.
// ---------------------------------------------------------------------------

TEST(LintLayering, SummaryReportsViolationsAndUnusedAllows) {
  const std::string out = testing::TempDir() + "lint_corpus_summary.txt";
  const RunResult r =
      run(with_layering("--layering-summary " + out + " " + corpus()));
  EXPECT_EQ(r.exit_code, 1) << r.output;

  std::ifstream in(out);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("# strings_lint layering summary v1"),
            std::string::npos);
  EXPECT_NE(text.find("edge a b uses=1 allowed"), std::string::npos) << text;
  EXPECT_NE(text.find("edge c b uses=0 VIOLATION"), std::string::npos) << text;
  EXPECT_NE(text.find("unused-allow a unused_layer"), std::string::npos)
      << text;
  EXPECT_NE(text.find("violations=1 unused_allows=1"), std::string::npos)
      << text;
}

}  // namespace
