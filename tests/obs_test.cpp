// Unit tests for the observability layer: the metrics registry, the tracer's
// track/event model and request-lifecycle records, and the Chrome
// trace-event export.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace strings::obs {
namespace {

// ---- Registry ----

TEST(Registry, CounterIsStableAcrossLookups) {
  Registry reg;
  Counter& c = reg.counter("a/b");
  c.inc();
  reg.counter("a/b").inc(4);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("a/b"));
  EXPECT_FALSE(reg.contains("a"));
}

TEST(Registry, GaugeSetAndCallback) {
  Registry reg;
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  double source = 7.0;
  reg.gauge_fn("poll", [&source] { return source; });
  EXPECT_DOUBLE_EQ(reg.gauge("poll").value(), 7.0);
  source = 9.0;  // polled at read time, not registration time
  EXPECT_DOUBLE_EQ(reg.gauge("poll").value(), 9.0);
}

TEST(Registry, HistogramBucketsAndStats) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(1.0);  // boundary lands in the <= 1.0 bucket
  h.observe(50.0);
  h.observe(1000.0);  // overflow -> +inf bucket only
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1051.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  const auto cum = h.cumulative();
  ASSERT_EQ(cum.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(cum[0], 2);       // <= 1
  EXPECT_EQ(cum[1], 2);       // <= 10
  EXPECT_EQ(cum[2], 3);       // <= 100
  EXPECT_EQ(cum[3], 4);       // inf
}

TEST(Registry, HistogramEmptyMinMaxAreZero) {
  Registry reg;
  Histogram& h = reg.histogram("empty", default_latency_buckets_ms());
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Registry, CollectIsLexicographicAcrossKinds) {
  Registry reg;
  reg.counter("z/count").inc(3);
  reg.gauge("a/gauge").set(1.0);
  reg.histogram("m/hist", {5.0}).observe(2.0);
  const auto samples = reg.collect();
  ASSERT_GE(samples.size(), 3u);
  // Names must be non-decreasing regardless of instrument kind.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].metric, samples[i].metric);
  }
  EXPECT_EQ(samples.front().metric, "a/gauge");
  EXPECT_EQ(samples.back().metric, "z/count");
}

TEST(Registry, CsvHasHeaderAndHistogramFields) {
  Registry reg;
  reg.counter("n0/wakes").inc(2);
  reg.histogram("n0/lat", {1.0}).observe(0.5);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("metric,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("n0/wakes,value,2"), std::string::npos);
  EXPECT_NE(csv.find("n0/lat,count,1"), std::string::npos);
  EXPECT_NE(csv.find("n0/lat,le_1,1"), std::string::npos);
  EXPECT_NE(csv.find("n0/lat,le_inf,1"), std::string::npos);
}

// ---- Tracer ----

TEST(Tracer, ProcessAndTrackRegistryDeduplicates) {
  Tracer t;
  const int p0 = t.add_process("node0");
  EXPECT_EQ(t.add_process("node0"), p0);
  const int a = t.add_track(p0, "alpha");
  const int b = t.add_track(p0, "beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.tracks()[static_cast<std::size_t>(a)].pid, p0);
  // tids are assigned per-process in creation order.
  EXPECT_LT(t.tracks()[static_cast<std::size_t>(a)].tid,
            t.tracks()[static_cast<std::size_t>(b)].tid);
  EXPECT_EQ(t.node_process(0), p0);
}

TEST(Tracer, GpuOpRoutesKernelsAndCopies) {
  Tracer t;
  t.register_gpu(/*gid=*/3, /*node=*/1, "Tesla C2050");
  ASSERT_TRUE(t.has_gpu(3));
  t.gpu_op(3, "KL", sim::usec(10), sim::usec(30));
  t.gpu_op(3, "H2D", sim::usec(2), sim::usec(6));
  t.gpu_op(3, "D2H", sim::usec(31), sim::usec(34));
  ASSERT_EQ(t.events().size(), 3u);
  const auto& kl = t.events()[0];
  const auto& h2d = t.events()[1];
  EXPECT_EQ(kl.name, "KL");
  EXPECT_NE(kl.track, h2d.track);  // compute vs copy track
  EXPECT_EQ(t.events()[2].track, h2d.track);
  EXPECT_EQ(kl.dur, sim::usec(20));
  // Ops on unregistered GPUs are dropped, not crashed on.
  t.gpu_op(99, "KL", 0, 1);
  EXPECT_EQ(t.events().size(), 3u);
}

TEST(Tracer, DispatcherEventsAreInstants) {
  Tracer t;
  t.register_gpu(0, 0, "Quadro 2000");
  t.dispatcher_event(0, /*wake=*/true, sim::usec(5));
  t.dispatcher_event(0, /*wake=*/false, sim::usec(9));
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].type, Tracer::EventType::kInstant);
  EXPECT_EQ(t.events()[0].name, "dispatch.wake");
  EXPECT_EQ(t.events()[1].name, "dispatch.sleep");
}

TEST(Tracer, LinkTracksLiveUnderNetworkProcess) {
  Tracer t;
  const int ab = t.link_track(0, 1);
  EXPECT_EQ(t.link_track(0, 1), ab);   // cached
  EXPECT_NE(t.link_track(1, 0), ab);   // directed
  const auto& track = t.tracks()[static_cast<std::size_t>(ab)];
  EXPECT_EQ(track.name, "n0->n1");
  EXPECT_EQ(t.processes()[static_cast<std::size_t>(track.pid)].name,
            "network");
}

TEST(Tracer, RequestLifecycleRecordsPhases) {
  Tracer t;
  RequestTrace& r =
      t.begin_request(42, "MC", "pricing-svc", /*origin=*/1, sim::usec(1));
  t.request_phase(42, ReqPhase::kBind, sim::usec(2));
  t.request_phase(42, ReqPhase::kMarshal, sim::usec(3));
  t.request_phase(42, ReqPhase::kMarshal, sim::usec(4));
  t.end_request(42, sim::usec(9));
  EXPECT_EQ(r.issued_at, sim::usec(1));
  EXPECT_EQ(r.completed_at, sim::usec(9));
  EXPECT_EQ(r.count(ReqPhase::kBind), 1);
  EXPECT_EQ(r.count(ReqPhase::kMarshal), 2);
  EXPECT_EQ(r.count(ReqPhase::kExecute), 0);
  // end_request emits the umbrella span on the request's own track.
  ASSERT_FALSE(t.events().empty());
  const auto& umbrella = t.events().back();
  EXPECT_EQ(umbrella.track, r.track);
  EXPECT_EQ(umbrella.name, "request MC");
  EXPECT_EQ(umbrella.dur, sim::usec(8));
}

TEST(Tracer, UnknownAppIdCreatesRecordLazily) {
  Tracer t;
  t.request_phase(7, ReqPhase::kBackendQueue, sim::usec(5));
  ASSERT_EQ(t.requests().count(7), 1u);
  EXPECT_EQ(t.requests().at(7).count(ReqPhase::kBackendQueue), 1);
}

TEST(ReqPhaseNames, CoverLifecycle) {
  EXPECT_STREQ(req_phase_name(ReqPhase::kIssue), "issue");
  EXPECT_STREQ(req_phase_name(ReqPhase::kDispatchWait), "dispatch_wait");
  EXPECT_STREQ(req_phase_name(ReqPhase::kComplete), "complete");
}

// ---- export ----

TEST(Export, JsonEscapesControlAndQuote) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Export, ChromeTraceShapeAndTimestamps) {
  Tracer t;
  t.register_gpu(0, 0, "Quadro 2000");
  t.gpu_op(0, "KL", sim::usec(1) + 500, sim::usec(4));  // sub-µs start
  std::ostringstream os;
  write_chrome_trace(t, os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"node0\""), std::string::npos);
  EXPECT_NE(out.find("gpu0 Quadro 2000 compute"), std::string::npos);
  // ns timestamps render as fractional µs: 1500ns -> 1.500, dur 2500ns.
  EXPECT_NE(out.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":2.500"), std::string::npos);
  // Valid JSON object close.
  EXPECT_EQ(out.back(), '\n');
}

TEST(Export, MetricsCsvRoundTrip) {
  Registry reg;
  reg.counter("x").inc();
  std::ostringstream os;
  write_metrics_csv(reg, os);
  EXPECT_EQ(os.str(), reg.to_csv());
}

}  // namespace
}  // namespace strings::obs
