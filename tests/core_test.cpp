// Unit tests for the core Strings infrastructure: gMap/gPool, DST, SFT,
// the PlacementService (Target GPU Selector + Policy Arbiter, exercised via
// its direct oracle API), and the per-device GPU scheduler (RM handshake,
// dispatcher gating, RMO accounting, FE records).
#include "core/placement_service.hpp"
#include "core/gpu_scheduler.hpp"
#include "core/gpool.hpp"
#include "core/tables.hpp"

#include <gtest/gtest.h>

namespace strings::core {
namespace {

using policies::Phase;
using sim::msec;
using sim::sec;

TEST(GMap, AssignsSequentialGids) {
  GMap m;
  auto a = m.add_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
  auto b = m.add_node(1, {gpu::quadro4000()});
  EXPECT_EQ(a, (std::vector<Gid>{0, 1}));
  EXPECT_EQ(b, (std::vector<Gid>{2}));
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.entry(2).node, 1);
  EXPECT_EQ(m.entry(2).local_device, 0);
  EXPECT_EQ(m.entry(0).props.name, "Quadro 2000");
  EXPECT_THROW(m.entry(5), std::out_of_range);
}

TEST(GMap, GidsOnNode) {
  GMap m;
  m.add_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
  m.add_node(1, {gpu::quadro4000(), gpu::tesla_c2070()});
  EXPECT_EQ(m.gids_on_node(0), (std::vector<Gid>{0, 1}));
  EXPECT_EQ(m.gids_on_node(1), (std::vector<Gid>{2, 3}));
}

TEST(GMap, WeightsTrackComputeScore) {
  GMap m;
  m.add_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
  EXPECT_DOUBLE_EQ(m.entry(0).weight, 0.47);
  EXPECT_DOUBLE_EQ(m.entry(1).weight, 1.0);
}

TEST(DeviceStatusTable, BindUnbindTracksLoad) {
  GMap m;
  m.add_node(0, {gpu::tesla_c2050(), gpu::tesla_c2070()});
  DeviceStatusTable dst(m);
  dst.on_bind(0);
  dst.on_bind(0);
  dst.on_bind(1);
  EXPECT_EQ(dst.row(0).load, 2);
  EXPECT_EQ(dst.row(1).load, 1);
  EXPECT_EQ(dst.row(0).total_bound, 2);
  dst.on_unbind(0);
  EXPECT_EQ(dst.row(0).load, 1);
  dst.on_unbind(0);
  dst.on_unbind(0);  // extra unbind must not go negative
  EXPECT_EQ(dst.row(0).load, 0);
}

TEST(SchedulerFeedbackTable, FirstRecordStoredVerbatim) {
  SchedulerFeedbackTable sft;
  FeedbackRecord r;
  r.app_type = "MC";
  r.exec_time_s = 4.0;
  r.gpu_util = 0.8;
  sft.update(r);
  auto got = sft.lookup("MC");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->exec_time_s, 4.0);
  EXPECT_DOUBLE_EQ(got->gpu_util, 0.8);
  EXPECT_EQ(sft.samples("MC"), 1);
  EXPECT_FALSE(sft.lookup("BS").has_value());
}

TEST(SchedulerFeedbackTable, EwmaSmoothsSubsequentRecords) {
  SchedulerFeedbackTable sft(0.5);
  FeedbackRecord r;
  r.app_type = "MC";
  r.exec_time_s = 4.0;
  sft.update(r);
  r.exec_time_s = 8.0;
  sft.update(r);
  EXPECT_DOUBLE_EQ(sft.lookup("MC")->exec_time_s, 6.0);
  EXPECT_EQ(sft.samples("MC"), 2);
}

struct MapperFixture {
  MapperFixture(const std::string& stat, const std::string& fb) {
    PlacementService::Config cfg;
    cfg.static_policy = stat;
    cfg.feedback_policy = fb;
    mapper = std::make_unique<PlacementService>(cfg);
    mapper->report_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
    mapper->report_node(1, {gpu::quadro4000(), gpu::tesla_c2070()});
    mapper->finalize();
  }
  std::unique_ptr<PlacementService> mapper;
};

TEST(PlacementService, SelectBindsAndUnbindReleases) {
  MapperFixture f("GMin", "");
  const Gid g1 = f.mapper->select_device("MC", 0);
  EXPECT_EQ(f.mapper->dst().row(g1).load, 1);
  EXPECT_EQ(f.mapper->bound_types()[static_cast<std::size_t>(g1)].size(), 1u);
  f.mapper->unbind(g1, "MC");
  EXPECT_EQ(f.mapper->dst().row(g1).load, 0);
  EXPECT_TRUE(f.mapper->bound_types()[static_cast<std::size_t>(g1)].empty());
}

TEST(PlacementService, GMinSpreadsLoad) {
  MapperFixture f("GMin", "");
  std::vector<int> loads(4, 0);
  for (int i = 0; i < 8; ++i) {
    ++loads[static_cast<std::size_t>(f.mapper->select_device("MC", 0))];
  }
  for (int l : loads) EXPECT_EQ(l, 2);
}

TEST(PlacementService, ArbiterSwitchesToFeedbackPolicyAfterFirstRecord) {
  MapperFixture f("GWtMin", "MBF");
  EXPECT_STREQ(f.mapper->active_policy_name("MC"), "GWtMin");
  f.mapper->select_device("MC", 0);
  EXPECT_EQ(f.mapper->static_selections(), 1);

  FeedbackRecord r;
  r.app_type = "MC";
  r.exec_time_s = 2.0;
  r.gpu_time_s = 1.5;
  r.gpu_util = 0.75;
  r.mem_bw_gbps = 120.0;
  f.mapper->on_feedback(r);

  EXPECT_STREQ(f.mapper->active_policy_name("MC"), "MBF");
  EXPECT_STREQ(f.mapper->active_policy_name("BS"), "GWtMin");  // no data yet
  f.mapper->select_device("MC", 0);
  EXPECT_EQ(f.mapper->feedback_selections(), 1);
}

TEST(PlacementService, ArbiterHonorsMinSampleThreshold) {
  PlacementService::Config cfg;
  cfg.static_policy = "GWtMin";
  cfg.feedback_policy = "RTF";
  cfg.min_feedback_samples = 3;
  PlacementService m(cfg);
  m.report_node(0, {gpu::tesla_c2050(), gpu::tesla_c2070()});
  m.finalize();
  FeedbackRecord r;
  r.app_type = "MC";
  r.exec_time_s = 1.0;
  m.on_feedback(r);
  m.on_feedback(r);
  EXPECT_STREQ(m.active_policy_name("MC"), "GWtMin");  // 2 of 3 samples
  m.on_feedback(r);
  EXPECT_STREQ(m.active_policy_name("MC"), "RTF");
}

TEST(PlacementService, FinalizeWithNoDevicesThrows) {
  PlacementService::Config cfg;
  PlacementService m(cfg);
  EXPECT_THROW(m.finalize(), std::logic_error);
}

TEST(PlacementService, ReportAfterFinalizeThrows) {
  MapperFixture f("GRR", "");
  EXPECT_THROW(f.mapper->report_node(2, {gpu::tesla_c2050()}),
               std::logic_error);
}

// ------------------------------------------------------------ scheduler --

struct SchedFixture {
  SchedFixture(const std::string& policy_name,
               GpuScheduler::Config cfg = GpuScheduler::Config{})
      : sched(sim, 0, policies::make_device_policy(policy_name), cfg) {}
  sim::Simulation sim;
  GpuScheduler sched;
};

gpu::GpuDevice::Op make_op(gpu::GpuDevice::OpKind kind, sim::SimTime start,
                           sim::SimTime end, double bw = 0.0,
                           sim::SimTime nominal = 0) {
  gpu::GpuDevice::Op op;
  op.kind = kind;
  op.submitted = start;
  op.started = start;
  op.completed = end;
  op.kernel.bw_demand_gbps = bw;
  op.kernel.nominal_duration = nominal;
  return op;
}

TEST(GpuScheduler, RegistrationHandshake) {
  SchedFixture f("AllAwake");
  WakeGate gate(f.sim);
  GpuScheduler::RcbInit init;
  init.app_type = "MC";
  init.tenant = "A";
  init.gate = &gate;
  const int id = f.sched.register_app(init);
  EXPECT_GT(id, 0);
  EXPECT_EQ(f.sched.registered_count(), 1);
  // Before ack, the entry does not participate in dispatching.
  EXPECT_TRUE(f.sched.snapshot().empty());
  f.sched.ack(id);
  EXPECT_EQ(f.sched.snapshot().size(), 1u);
  const auto rec = f.sched.unregister_app(id);
  EXPECT_EQ(rec.app_type, "MC");
  EXPECT_EQ(f.sched.registered_count(), 0);
}

TEST(GpuScheduler, MonitorAccumulatesServiceByKind) {
  SchedFixture f("AllAwake");
  WakeGate gate(f.sim);
  GpuScheduler::RcbInit init;
  init.app_type = "MC";
  init.gate = &gate;
  const int id = f.sched.register_app(init);
  f.sched.ack(id);
  f.sched.on_op_complete(
      id, make_op(gpu::GpuDevice::OpKind::kKernel, 0, msec(10), 100.0, msec(10)));
  f.sched.on_op_complete(id,
                         make_op(gpu::GpuDevice::OpKind::kH2D, msec(10), msec(14)));
  EXPECT_EQ(f.sched.service_attained(id), msec(14));
  const auto rec = f.sched.unregister_app(id);
  EXPECT_DOUBLE_EQ(rec.gpu_time_s, 0.010);
  EXPECT_DOUBLE_EQ(rec.transfer_time_s, 0.004);
  // bytes = 100 GB/s * 10ms = 1e9 bytes over 10ms gpu time = 100 GB/s.
  EXPECT_NEAR(rec.mem_bw_gbps, 100.0, 1e-9);
}

TEST(GpuScheduler, RainAccountingIncludesQueueingTime) {
  GpuScheduler::Config cfg;
  cfg.measure_includes_wait = true;
  SchedFixture f("AllAwake", cfg);
  WakeGate gate(f.sim);
  GpuScheduler::RcbInit init;
  init.gate = &gate;
  const int id = f.sched.register_app(init);
  f.sched.ack(id);
  auto op = make_op(gpu::GpuDevice::OpKind::kKernel, msec(5), msec(10));
  op.submitted = 0;  // waited 5ms behind another context
  f.sched.on_op_complete(id, op);
  EXPECT_EQ(f.sched.service_attained(id), msec(10));  // includes the wait
}

TEST(GpuScheduler, FeedbackSinkInvokedOnUnregister) {
  SchedFixture f("AllAwake");
  std::vector<FeedbackRecord> got;
  f.sched.set_feedback_sink([&](const FeedbackRecord& r) { got.push_back(r); });
  WakeGate gate(f.sim);
  GpuScheduler::RcbInit init;
  init.app_type = "BS";
  init.gate = &gate;
  const int id = f.sched.register_app(init);
  f.sched.ack(id);
  f.sched.unregister_app(id);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].app_type, "BS");
  EXPECT_EQ(got[0].gid, 0);
}

TEST(GpuScheduler, TfsDispatcherKeepsOneAwake) {
  GpuScheduler::Config cfg;
  cfg.epoch = msec(10);
  SchedFixture f("TFS", cfg);
  WakeGate g1(f.sim), g2(f.sim);
  GpuScheduler::RcbInit i1, i2;
  i1.tenant = "A";
  i1.gate = &g1;
  i1.backlog_probe = [] { return 1; };
  i2.tenant = "B";
  i2.gate = &g2;
  i2.backlog_probe = [] { return 1; };
  const int id1 = f.sched.register_app(i1);
  const int id2 = f.sched.register_app(i2);
  f.sched.ack(id1);
  f.sched.ack(id2);
  f.sim.run_until(msec(35));
  EXPECT_GE(f.sched.epochs_run(), 3);
  // Exactly one gate open under TFS.
  EXPECT_EQ((g1.awake() ? 1 : 0) + (g2.awake() ? 1 : 0), 1);
}

TEST(GpuScheduler, TfsAlternatesWithEqualWeights) {
  GpuScheduler::Config cfg;
  cfg.epoch = msec(10);
  SchedFixture f("TFS", cfg);
  WakeGate g1(f.sim), g2(f.sim);
  sim::SimTime g1_awake_time = 0, g2_awake_time = 0;
  GpuScheduler::RcbInit i1, i2;
  i1.tenant = "A";
  i1.gate = &g1;
  i1.backlog_probe = [] { return 1; };
  i2.tenant = "B";
  i2.gate = &g2;
  i2.backlog_probe = [] { return 1; };
  const int id1 = f.sched.register_app(i1);
  const int id2 = f.sched.register_app(i2);
  f.sched.ack(id1);
  f.sched.ack(id2);
  // Simulate service accrual proportional to awake time by feeding ops.
  for (int epoch = 0; epoch < 20; ++epoch) {
    f.sim.run_until(msec(10) * (epoch + 1));
    const int awake_id = g1.awake() ? id1 : id2;
    (g1.awake() ? g1_awake_time : g2_awake_time) += msec(10);
    f.sched.on_op_complete(
        awake_id, make_op(gpu::GpuDevice::OpKind::kKernel,
                          f.sim.now() - msec(10), f.sim.now()));
  }
  // Equal weights: both tenants should see comparable awake time.
  EXPECT_NEAR(static_cast<double>(g1_awake_time),
              static_cast<double>(g2_awake_time),
              static_cast<double>(msec(20)));
}

TEST(GpuScheduler, UnregisterLeavesGateOpen) {
  GpuScheduler::Config cfg;
  cfg.epoch = msec(10);
  SchedFixture f("TFS", cfg);
  WakeGate g1(f.sim), g2(f.sim);
  GpuScheduler::RcbInit i1, i2;
  i1.gate = &g1;
  i1.backlog_probe = [] { return 1; };
  i1.tenant = "A";
  i2.gate = &g2;
  i2.backlog_probe = [] { return 1; };
  i2.tenant = "B";
  const int id1 = f.sched.register_app(i1);
  const int id2 = f.sched.register_app(i2);
  f.sched.ack(id1);
  f.sched.ack(id2);
  f.sim.run_until(msec(15));
  f.sched.unregister_app(id1);
  f.sched.unregister_app(id2);
  EXPECT_TRUE(g1.awake());
  EXPECT_TRUE(g2.awake());
}

TEST(WakeGate, BlocksUntilOpened) {
  sim::Simulation sim;
  WakeGate gate(sim);
  gate.set(false);
  sim::SimTime woke_at = -1;
  sim.spawn("worker", [&] {
    gate.wait_until_awake();
    woke_at = sim.now();
  });
  sim.schedule(msec(7), [&] { gate.set(true); });
  sim.run();
  EXPECT_EQ(woke_at, msec(7));
}

TEST(WakeGate, OpenGateDoesNotBlock) {
  sim::Simulation sim;
  WakeGate gate(sim);
  bool ran = false;
  sim.spawn("worker", [&] {
    gate.wait_until_awake();
    ran = true;
  });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

}  // namespace
}  // namespace strings::core
