// Tests for the declarative scenario format: parsing, validation, error
// reporting, and end-to-end execution.
#include "workloads/scenario_config.hpp"

#include <gtest/gtest.h>

namespace strings::workloads {
namespace {

TEST(ScenarioParse, FullScenarioRoundTrip) {
  const char* text = R"(
# full example
mode = strings
topology = supernode
balancing = GWtMin
feedback = MBF
device_policy = PS
remote_link = gige
shared_network = true
epoch_ms = 20
trace_devices = true

[stream]
app = MC
origin = 1
requests = 7
lambda_scale = 0.4
server_threads = 5
seed = 99
tenant = pricing
weight = 2.5
)";
  const ScenarioConfig cfg = parse_scenario(std::string(text));
  EXPECT_EQ(cfg.testbed.mode, Mode::kStrings);
  EXPECT_EQ(cfg.testbed.nodes.size(), 2u);
  EXPECT_EQ(cfg.testbed.balancing_policy, "GWtMin");
  EXPECT_EQ(cfg.testbed.feedback_policy, "MBF");
  EXPECT_EQ(cfg.testbed.device_policy, "PS");
  EXPECT_TRUE(cfg.testbed.shared_network);
  EXPECT_TRUE(cfg.testbed.trace_devices);
  EXPECT_EQ(cfg.testbed.sched_epoch, sim::msec(20));
  EXPECT_DOUBLE_EQ(cfg.testbed.remote_link.bandwidth_gbps, 0.117);
  ASSERT_EQ(cfg.streams.size(), 1u);
  const ArrivalConfig& s = cfg.streams[0];
  EXPECT_EQ(s.app, "MC");
  EXPECT_EQ(s.origin, 1);
  EXPECT_EQ(s.requests, 7);
  EXPECT_DOUBLE_EQ(s.lambda_scale, 0.4);
  EXPECT_EQ(s.server_threads, 5);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.tenant, "pricing");
  EXPECT_DOUBLE_EQ(s.tenant_weight, 2.5);
}

TEST(ScenarioParse, DefaultsApplyWhenOmitted) {
  const ScenarioConfig cfg = parse_scenario(std::string(R"(
[stream]
app = GA
)"));
  EXPECT_EQ(cfg.testbed.mode, Mode::kStrings);
  EXPECT_EQ(cfg.streams[0].requests, 16);  // ArrivalConfig default
  EXPECT_EQ(cfg.streams[0].seed, 1u);      // auto-assigned per stream
}

TEST(ScenarioParse, AutoSeedsDifferPerStream) {
  const ScenarioConfig cfg = parse_scenario(std::string(R"(
[stream]
app = GA
[stream]
app = BS
)"));
  EXPECT_NE(cfg.streams[0].seed, cfg.streams[1].seed);
}

TEST(ScenarioParse, NxMTopology) {
  const ScenarioConfig cfg = parse_scenario(std::string(R"(
topology = 3x4
[stream]
app = GA
)"));
  ASSERT_EQ(cfg.testbed.nodes.size(), 3u);
  EXPECT_EQ(cfg.testbed.nodes[0].size(), 4u);
  EXPECT_EQ(cfg.testbed.nodes[2][3].name, "Tesla C2050");
}

TEST(ScenarioParse, CommentsAndBlankLinesIgnored) {
  const ScenarioConfig cfg = parse_scenario(std::string(R"(
# leading comment

mode = rain   # trailing comment

[stream]
app = SN      # another
)"));
  EXPECT_EQ(cfg.testbed.mode, Mode::kRain);
  EXPECT_EQ(cfg.streams[0].app, "SN");
}

TEST(ScenarioParse, SyncModeKeySelectsTheDeltaProtocol) {
  const ScenarioConfig cfg = parse_scenario(std::string(R"(
placement = distributed
sync_mode = push
[stream]
app = MC
)"));
  EXPECT_EQ(cfg.testbed.control_plane.sync_mode, core::SyncMode::kPush);
  const ScenarioConfig hybrid = parse_scenario(std::string(R"(
placement = distributed
sync_mode = hybrid
[stream]
app = MC
)"));
  EXPECT_EQ(hybrid.testbed.control_plane.sync_mode, core::SyncMode::kHybrid);
  // Omitted: pull, the pre-push default.
  const ScenarioConfig dflt = parse_scenario(std::string(R"(
[stream]
app = MC
)"));
  EXPECT_EQ(dflt.testbed.control_plane.sync_mode, core::SyncMode::kPull);
}

TEST(ScenarioParse, UnknownSyncModeIsALineError) {
  try {
    parse_scenario(std::string("mode = strings\nsync_mode = gossip\n"));
    FAIL() << "expected ScenarioParseError";
  } catch (const ScenarioParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown sync mode"), std::string::npos) << what;
  }
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  try {
    parse_scenario(std::string("mode = strings\nbogus_key = 1\n"));
    FAIL() << "expected ScenarioParseError";
  } catch (const ScenarioParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_scenario(std::string("just text\n[stream]\napp = GA\n")),
               ScenarioParseError);
  EXPECT_THROW(parse_scenario(std::string("mode = warp\n[stream]\napp = GA\n")),
               ScenarioParseError);
  EXPECT_THROW(parse_scenario(std::string("[bogus]\n")), ScenarioParseError);
  EXPECT_THROW(parse_scenario(std::string("[stream]\nrequests = ten\n")),
               ScenarioParseError);
  EXPECT_THROW(
      parse_scenario(std::string("[stream]\napp = GA\nweight = 2kg\n")),
      ScenarioParseError);
  EXPECT_THROW(parse_scenario(std::string("topology = 0x4\n[stream]\napp=GA\n")),
               ScenarioParseError);
}

TEST(ScenarioParse, RejectsEmptyOrIncompleteScenarios) {
  EXPECT_THROW(parse_scenario(std::string("mode = strings\n")),
               ScenarioParseError);
  EXPECT_THROW(parse_scenario(std::string("[stream]\nrequests = 2\n")),
               ScenarioParseError);
  // Unknown app is validated at parse time.
  EXPECT_THROW(parse_scenario(std::string("[stream]\napp = ZZ\n")),
               std::invalid_argument);
  // Origin beyond the topology.
  EXPECT_THROW(
      parse_scenario(std::string("topology = small\n[stream]\napp = GA\norigin = 3\n")),
      ScenarioParseError);
}

TEST(ScenarioParse, LoadMissingFileThrows) {
  EXPECT_THROW(load_scenario("/nonexistent/path.scenario"),
               ScenarioParseError);
}

TEST(ScenarioRun, ExecutesEndToEnd) {
  const ScenarioConfig cfg = parse_scenario(std::string(R"(
mode = strings
topology = small
balancing = GMin
[stream]
app = GA
requests = 3
lambda_scale = 0.5
)"));
  const auto stats = run_scenario_config(cfg);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].completed, 3);
  EXPECT_EQ(stats[0].errors, 0);
}

}  // namespace
}  // namespace strings::workloads
