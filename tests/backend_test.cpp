// Tests for the Context Packer and the backend daemon's three designs,
// driven through raw RPC channels (no interposer).
#include "backend/backend_daemon.hpp"
#include "backend/context_packer.hpp"

#include <gtest/gtest.h>

#include "gpu/device_props.hpp"
#include "simcore/simulation.hpp"

namespace strings::backend {
namespace {

using cuda::cudaError_t;
using cuda::cudaMemcpyKind;
using rpc::CallId;
using sim::msec;
using sim::SimTime;

constexpr std::size_t kMB = 1u << 20;

struct PackerFixture {
  PackerFixture() {
    auto props = gpu::tesla_c2050();
    props.copy_latency = 0;
    props.crowding_alpha = 0;
    props.pageable_factor = 1.0;
    dev = std::make_unique<gpu::GpuDevice>(sim, 0, props);
    rt = std::make_unique<cuda::CudaRuntime>(
        sim, std::vector<gpu::GpuDevice*>{dev.get()});
    pid = rt->create_process();
    packer = std::make_unique<ContextPacker>(sim, *rt, pid, 0,
                                             ContextPacker::Config{});
  }
  sim::Simulation sim;
  std::unique_ptr<gpu::GpuDevice> dev;
  std::unique_ptr<cuda::CudaRuntime> rt;
  cuda::ProcessId pid = 0;
  std::unique_ptr<ContextPacker> packer;
};

TEST(ContextPacker, StreamCreatorMakesOneStreamPerApp) {
  PackerFixture f;
  f.sim.spawn("t", [&] {
    const auto s1 = f.packer->stream_for(1);
    const auto s2 = f.packer->stream_for(2);
    EXPECT_NE(s1, s2);
    EXPECT_EQ(f.packer->stream_for(1), s1);  // idempotent
    EXPECT_EQ(f.packer->packed_apps(), 2);
  });
  f.sim.run();
}

TEST(ContextPacker, MotConvertsH2DToAsyncAndTracksPmt) {
  PackerFixture f;
  SimTime returned_at = -1;
  f.sim.spawn("t", [&] {
    cuda::DevPtr p = 0;
    f.rt->cudaMalloc(f.pid, &p, 60 * kMB);
    // 60 MB at 6 GB/s = 10ms on the wire; staging at 20 GB/s costs 3ms of
    // host time but the call must NOT wait for the device copy too.
    EXPECT_EQ(f.packer->memcpy_sync(1, p, 60'000'000,
                                    cudaMemcpyKind::cudaMemcpyHostToDevice),
              cudaError_t::cudaSuccess);
    returned_at = f.sim.now();
    EXPECT_EQ(f.packer->pmt().size(), 1u);
    EXPECT_EQ(f.packer->pinned_bytes(), 60'000'000u);
    EXPECT_EQ(f.packer->pmt()[0].app_id, 1u);
    // Sync point releases the pinned staging buffer.
    EXPECT_EQ(f.packer->device_synchronize(1), cudaError_t::cudaSuccess);
    EXPECT_TRUE(f.packer->pmt().empty());
    EXPECT_EQ(f.packer->pinned_bytes(), 0u);
  });
  f.sim.run();
  // Return after staging (3ms) but before the async device copy would
  // have been waited on (3ms staging + 10ms copy = 13ms).
  EXPECT_EQ(returned_at, msec(3));
}

TEST(ContextPacker, D2HBlocksAndReleasesPmt) {
  PackerFixture f;
  SimTime returned_at = -1;
  f.sim.spawn("t", [&] {
    cuda::DevPtr p = 0;
    f.rt->cudaMalloc(f.pid, &p, 60 * kMB);
    f.packer->memcpy_sync(1, p, 60'000'000,
                          cudaMemcpyKind::cudaMemcpyHostToDevice);
    EXPECT_EQ(f.packer->memcpy_sync(1, p, 60'000'000,
                                    cudaMemcpyKind::cudaMemcpyDeviceToHost),
              cudaError_t::cudaSuccess);
    returned_at = f.sim.now();
    EXPECT_TRUE(f.packer->pmt().empty());  // D2H releases staged entries
  });
  f.sim.run();
  // Staging 3ms, then H2D 10ms and D2H 10ms serialize on the app stream.
  EXPECT_EQ(returned_at, msec(23));
}

TEST(ContextPacker, SyncConversionDisabledBlocksOnH2D) {
  PackerFixture f;
  ContextPacker::Config cfg;
  cfg.convert_sync_to_async = false;
  cfg.staging_gbps = 0;  // no staging either
  auto packer = std::make_unique<ContextPacker>(f.sim, *f.rt, f.pid, 0, cfg);
  SimTime returned_at = -1;
  f.sim.spawn("t", [&] {
    cuda::DevPtr p = 0;
    f.rt->cudaMalloc(f.pid, &p, 60 * kMB);
    packer->memcpy_sync(1, p, 60'000'000,
                        cudaMemcpyKind::cudaMemcpyHostToDevice);
    returned_at = f.sim.now();
    EXPECT_TRUE(packer->pmt().empty());
  });
  f.sim.run();
  EXPECT_EQ(returned_at, msec(10));  // blocked for the full transfer
}

TEST(ContextPacker, ThreadExitCleansUpStreamAndPmt) {
  PackerFixture f;
  f.sim.spawn("t", [&] {
    cuda::DevPtr p = 0;
    f.rt->cudaMalloc(f.pid, &p, 60 * kMB);
    f.packer->memcpy_sync(7, p, 30'000'000,
                          cudaMemcpyKind::cudaMemcpyHostToDevice);
    EXPECT_EQ(f.packer->packed_apps(), 1);
    EXPECT_EQ(f.packer->thread_exit(7), cudaError_t::cudaSuccess);
    EXPECT_EQ(f.packer->packed_apps(), 0);
    EXPECT_TRUE(f.packer->pmt().empty());
  });
  f.sim.run();
}

// ------------------------------------------------------------- daemon ----

struct DaemonFixture {
  explicit DaemonFixture(Design design,
                         const std::string& device_policy = "AllAwake") {
    auto props = gpu::tesla_c2050();
    props.copy_latency = 0;
    props.crowding_alpha = 0;
    props.pageable_factor = 1.0;
    props.ctx_switch = msec(1);
    for (int i = 0; i < 2; ++i) {
      devices.push_back(std::make_unique<gpu::GpuDevice>(sim, i, props));
    }
    std::vector<gpu::GpuDevice*> ptrs{devices[0].get(), devices[1].get()};
    rt = std::make_unique<cuda::CudaRuntime>(sim, ptrs);
    BackendConfig cfg;
    cfg.design = design;
    cfg.device_policy = device_policy;
    daemon = std::make_unique<BackendDaemon>(sim, 0, *rt,
                                             std::vector<core::Gid>{0, 1}, cfg);
  }

  /// Drives one full app lifecycle over a raw RPC client; returns the
  /// decoded feedback record.
  core::FeedbackRecord run_app_via_rpc(std::uint64_t app_id,
                                       const std::string& type, int dev,
                                       SimTime kernel_ms, int kernels) {
    AppDescriptor app;
    app.app_id = app_id;
    app.app_type = type;
    app.tenant = "T";
    rpc::DuplexChannel& ch =
        daemon->connect(app, dev, rpc::LinkModel::shared_memory());
    rpc::RpcClient client(ch);

    rpc::Unmarshal m(client.call(CallId::kMalloc, encode_malloc(10 * kMB)));
    EXPECT_EQ(m.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
    const cuda::DevPtr ptr = m.get_u64();

    rpc::Unmarshal c(client.call(
        CallId::kMemcpy,
        encode_memcpy(ptr, 6'000'000,
                      cudaMemcpyKind::cudaMemcpyHostToDevice)));
    EXPECT_EQ(c.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);

    cuda::KernelLaunch kl;
    kl.name = type;
    kl.desc = gpu::KernelDesc{msec(kernel_ms), 0.5, 10.0};
    for (int i = 0; i < kernels; ++i) {
      rpc::Unmarshal l(client.call(CallId::kLaunch, encode_launch(kl)));
      EXPECT_EQ(l.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
    }
    rpc::Unmarshal s(client.call(CallId::kDeviceSynchronize, rpc::Marshal{}));
    EXPECT_EQ(s.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);

    rpc::Unmarshal e(client.call(CallId::kThreadExit, rpc::Marshal{}));
    EXPECT_EQ(e.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
    EXPECT_TRUE(e.get_bool());
    return decode_feedback(e);
  }

  sim::Simulation sim;
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::unique_ptr<cuda::CudaRuntime> rt;
  std::unique_ptr<BackendDaemon> daemon;
};

class DaemonDesignTest : public ::testing::TestWithParam<Design> {};

TEST_P(DaemonDesignTest, FullAppLifecycleProducesFeedback) {
  DaemonFixture f(GetParam());
  core::FeedbackRecord rec;
  f.sim.spawn("app", [&] { rec = f.run_app_via_rpc(1, "MC", 0, 20, 2); });
  f.sim.run();
  EXPECT_EQ(rec.app_type, "MC");
  EXPECT_EQ(rec.gid, 0);
  EXPECT_NEAR(rec.gpu_time_s, 0.040, 1e-3);  // 2 kernels x 20ms
  EXPECT_GT(rec.gpu_util, 0.0);
  EXPECT_GT(rec.mem_bw_gbps, 0.0);
  EXPECT_EQ(f.daemon->connections_accepted(), 1);
  // All device memory released after exit.
  EXPECT_EQ(f.devices[0]->memory_used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DaemonDesignTest,
                         ::testing::Values(Design::kProcessPerApp,
                                           Design::kSingleMaster,
                                           Design::kThreadPerApp));

TEST(BackendDaemon, RainPaysContextSwitchesStringsDoesNot) {
  for (const Design design :
       {Design::kProcessPerApp, Design::kThreadPerApp}) {
    DaemonFixture f(design);
    int done = 0;
    for (int a = 0; a < 2; ++a) {
      f.sim.spawn("app" + std::to_string(a), [&f, &done, a] {
        f.run_app_via_rpc(static_cast<std::uint64_t>(a + 1), "MC", 0, 30, 3);
        ++done;
      });
    }
    f.sim.run();
    EXPECT_EQ(done, 2);
    if (design == Design::kProcessPerApp) {
      EXPECT_GT(f.devices[0]->counters().context_switches, 0)
          << "Rain apps have separate contexts";
    } else {
      EXPECT_EQ(f.devices[0]->counters().context_switches, 0)
          << "Strings packs apps into one context";
    }
  }
}

TEST(BackendDaemon, StringsOverlapsAppsAcrossStreams) {
  // Two apps, each 3 x 30ms kernels at occupancy 0.5: Strings space-shares
  // (one context) so the pair finishes near 90ms; Rain serializes contexts.
  auto run = [](Design design) {
    DaemonFixture f(design);
    SimTime finished = 0;
    auto* fp = &f;
    for (int a = 0; a < 2; ++a) {
      f.sim.spawn("app" + std::to_string(a), [fp, &finished, a] {
        fp->run_app_via_rpc(static_cast<std::uint64_t>(a + 1), "MC", 0, 30, 3);
        finished = std::max(finished, fp->sim.now());
      });
    }
    f.sim.run();
    return finished;
  };
  const SimTime strings_time = run(Design::kThreadPerApp);
  const SimTime rain_time = run(Design::kProcessPerApp);
  EXPECT_LT(strings_time, rain_time);
  EXPECT_LT(strings_time, msec(140));
  EXPECT_GT(rain_time, msec(170));
}

TEST(BackendDaemon, RequestsRouteToCorrectDevice) {
  DaemonFixture f(Design::kThreadPerApp);
  f.sim.spawn("a0", [&] { f.run_app_via_rpc(1, "A", 0, 10, 1); });
  f.sim.spawn("a1", [&] { f.run_app_via_rpc(2, "B", 1, 10, 1); });
  f.sim.run();
  EXPECT_EQ(f.devices[0]->counters().kernels_completed, 1);
  EXPECT_EQ(f.devices[1]->counters().kernels_completed, 1);
}

TEST(BackendDaemon, TfsGatesBackendThreads) {
  DaemonFixture f(Design::kThreadPerApp, "TFS");
  int done = 0;
  for (int a = 0; a < 2; ++a) {
    f.sim.spawn("app" + std::to_string(a), [&f, &done, a] {
      f.run_app_via_rpc(static_cast<std::uint64_t>(a + 1), "MC", 0, 20, 4);
      ++done;
    });
  }
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(f.daemon->scheduler(0).epochs_run(), 0);
}

TEST(BackendDaemon, WorkersReportPhasesToTheScheduler) {
  // The RCB phase must track what the backend thread is doing: H2D during
  // uploads, KL after a launch, DFL after a device sync (feeds PS).
  DaemonFixture f(Design::kThreadPerApp);
  f.sim.spawn("app", [&] {
    AppDescriptor app;
    app.app_id = 1;
    app.app_type = "PH";
    rpc::DuplexChannel& ch =
        f.daemon->connect(app, 0, rpc::LinkModel::shared_memory());
    rpc::RpcClient client(ch);
    rpc::Unmarshal m(client.call(CallId::kMalloc, encode_malloc(64 * kMB)));
    const cuda::DevPtr ptr = m.get_u64();

    auto phase_now = [&]() -> policies::Phase {
      const auto snaps = f.daemon->scheduler(0).snapshot();
      EXPECT_EQ(snaps.size(), 1u);
      return snaps.empty() ? policies::Phase::kDefault : snaps[0].phase;
    };

    client.call(CallId::kMemcpy,
                encode_memcpy(ptr, 60'000'000,
                              cudaMemcpyKind::cudaMemcpyHostToDevice));
    EXPECT_EQ(phase_now(), policies::Phase::kH2D);
    cuda::KernelLaunch kl{"k", gpu::KernelDesc{msec(10), 0.5, 0.0}};
    client.call(CallId::kLaunch, encode_launch(kl));
    EXPECT_EQ(phase_now(), policies::Phase::kKernelLaunch);
    client.call(CallId::kDeviceSynchronize, rpc::Marshal{});
    EXPECT_EQ(phase_now(), policies::Phase::kDefault);
    client.call(CallId::kMemcpy,
                encode_memcpy(ptr, 6'000'000,
                              cudaMemcpyKind::cudaMemcpyDeviceToHost));
    EXPECT_EQ(phase_now(), policies::Phase::kD2H);
    client.call(CallId::kThreadExit, rpc::Marshal{});
  });
  f.sim.run();
}

TEST(BackendDaemon, UnknownCallRepliesError) {
  DaemonFixture f(Design::kThreadPerApp);
  f.sim.spawn("app", [&] {
    AppDescriptor app;
    app.app_id = 9;
    app.app_type = "X";
    rpc::DuplexChannel& ch =
        f.daemon->connect(app, 0, rpc::LinkModel::shared_memory());
    rpc::RpcClient client(ch);
    rpc::Unmarshal u(client.call(CallId::kSelectDevice, rpc::Marshal{}));
    EXPECT_EQ(u.get_enum<cudaError_t>(), cudaError_t::cudaErrorUnknown);
    rpc::Unmarshal e(client.call(CallId::kThreadExit, rpc::Marshal{}));
    EXPECT_EQ(e.get_enum<cudaError_t>(), cudaError_t::cudaSuccess);
  });
  f.sim.run();
}

}  // namespace
}  // namespace strings::backend
