// Tests for the structured trace log and the protocol sequences components
// record into it: the Request Manager's three-way handshake (paper Fig. 7a),
// dispatcher wake/sleep decisions, TGS selections, and the Policy Arbiter's
// dynamic switch.
#include "simcore/trace_log.hpp"

#include <gtest/gtest.h>

#include "workloads/service.hpp"
#include "workloads/testbed.hpp"

namespace strings {
namespace {

using sim::msec;

TEST(TraceLog, RecordsTimestampedEntries) {
  sim::Simulation sim;
  sim::TraceLog log(sim);
  log.log("compA", "start");
  sim.run_until(msec(5));
  log.log("compB", "stop", "reason=done");
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries()[0].time, 0);
  EXPECT_EQ(log.entries()[1].time, msec(5));
  EXPECT_EQ(log.entries()[1].detail, "reason=done");
}

TEST(TraceLog, QueryFiltersBySubstring) {
  sim::Simulation sim;
  sim::TraceLog log(sim);
  log.log("gpusched/0", "rm.register");
  log.log("gpusched/1", "rm.register");
  log.log("mapper", "tgs.select");
  EXPECT_EQ(log.query("gpusched").size(), 2u);
  EXPECT_EQ(log.query("gpusched/1").size(), 1u);
  EXPECT_EQ(log.query("", "rm.").size(), 2u);
  EXPECT_EQ(log.query("mapper", "tgs.select").size(), 1u);
  EXPECT_TRUE(log.query("nothing").empty());
}

TEST(TraceLog, BoundedCapacityDropsOldest) {
  sim::Simulation sim;
  sim::TraceLog log(sim, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.log("c", "e" + std::to_string(i));
  }
  ASSERT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.entries().front().event, "e2");
  EXPECT_EQ(log.total_logged(), 5u);
}

TEST(TraceLog, EnabledReflectsCapacity) {
  sim::Simulation sim;
  sim::TraceLog on(sim);
  EXPECT_TRUE(on.enabled());
  sim::TraceLog off(sim, /*capacity=*/0);
  EXPECT_FALSE(off.enabled());
}

TEST(TraceLog, DisabledLogCountsButKeepsNothing) {
  sim::Simulation sim;
  sim::TraceLog log(sim, /*capacity=*/0);
  log.log("c", "e", "detail");
  log.log("c", "e2");
  EXPECT_TRUE(log.entries().empty());
  EXPECT_EQ(log.total_logged(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
}

TEST(TraceLog, DroppedTracksRingEviction) {
  sim::Simulation sim;
  sim::TraceLog log(sim, /*capacity=*/3);
  EXPECT_EQ(log.dropped(), 0u);
  for (int i = 0; i < 3; ++i) log.log("c", "e");
  EXPECT_EQ(log.dropped(), 0u);  // exactly full: nothing lost yet
  for (int i = 0; i < 4; ++i) log.log("c", "e");
  EXPECT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.dropped(), 4u);
}

TEST(TraceLog, DumpRendersReadably) {
  sim::Simulation sim;
  sim::TraceLog log(sim);
  log.log("mapper", "tgs.select", "app=MC gid=1");
  const std::string out = log.dump();
  EXPECT_NE(out.find("mapper: tgs.select (app=MC gid=1)"), std::string::npos);
}

struct TracedRun {
  explicit TracedRun(int requests = 2) {
    workloads::TestbedConfig cfg;
    cfg.mode = workloads::Mode::kStrings;
    cfg.nodes = workloads::small_server();
    cfg.balancing_policy = "GWtMin";
    cfg.device_policy = "TFS";
    cfg.feedback_policy = "MBF";
    cfg.trace_events = true;
    bed = std::make_unique<workloads::Testbed>(sim, cfg);
    workloads::ArrivalConfig a;
    a.app = "BS";
    a.requests = requests;
    a.lambda_scale = 1.5;  // sequential: feedback lands between requests
    a.seed = 7;
    stats = workloads::run_streams(*bed, {a});
  }
  sim::Simulation sim;
  std::unique_ptr<workloads::Testbed> bed;
  std::vector<workloads::StreamStats> stats;
};

TEST(TracedStack, HandshakeSequencePerRegistration) {
  TracedRun run;
  sim::TraceLog* log = run.bed->trace_log();
  ASSERT_NE(log, nullptr);
  // Fig. 7a: every registration produces register -> signal_id -> ack in
  // that order.
  const auto regs = log->query("gpusched", "rm.register");
  const auto sigs = log->query("gpusched", "rm.signal_id");
  const auto acks = log->query("gpusched", "rm.ack");
  EXPECT_EQ(regs.size(), 2u);  // one per request
  EXPECT_EQ(sigs.size(), regs.size());
  EXPECT_EQ(acks.size(), regs.size());
  // Feedback Engine records on exit, one per app.
  EXPECT_EQ(log->query("gpusched", "fe.feedback").size(), regs.size());
}

TEST(TracedStack, MapperLogsSelectionsAndArbiterSwitch) {
  TracedRun run(/*requests=*/3);
  sim::TraceLog* log = run.bed->trace_log();
  ASSERT_NE(log, nullptr);
  const auto selects = log->query("mapper", "tgs.select");
  ASSERT_EQ(selects.size(), 3u);
  // First selection used the static policy; the Arbiter switched to MBF
  // after the first feedback record, so a later one names MBF.
  EXPECT_NE(selects.front().detail.find("policy=GWtMin"), std::string::npos);
  EXPECT_EQ(log->query("mapper", "pa.switch_policy").size(), 1u);
  EXPECT_NE(selects.back().detail.find("policy=MBF"), std::string::npos);
}

TEST(TracedStack, TfsDispatcherLogsWakeSleepTransitions) {
  sim::Simulation sim;
  workloads::TestbedConfig cfg;
  cfg.mode = workloads::Mode::kStrings;
  cfg.nodes = {{gpu::tesla_c2050()}};
  cfg.device_policy = "TFS";
  cfg.trace_events = true;
  workloads::Testbed bed(sim, cfg);
  workloads::ArrivalConfig a;
  a.app = "MC";
  a.requests = 3;
  a.lambda_scale = 0.05;  // pile up: TFS must arbitrate
  a.server_threads = 3;
  a.seed = 3;
  workloads::run_streams(bed, {a});
  sim::TraceLog* log = bed.trace_log();
  ASSERT_NE(log, nullptr);
  EXPECT_GT(log->query("gpusched", "dispatch.sleep").size(), 0u);
  EXPECT_GT(log->query("gpusched", "dispatch.wake").size(), 0u);
}

TEST(TracedStack, TracingOffByDefault) {
  sim::Simulation sim;
  workloads::TestbedConfig cfg;
  cfg.mode = workloads::Mode::kStrings;
  cfg.nodes = workloads::small_server();
  workloads::Testbed bed(sim, cfg);
  EXPECT_EQ(bed.trace_log(), nullptr);
}

}  // namespace
}  // namespace strings
