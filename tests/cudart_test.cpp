// Unit tests for the simulated CUDA runtime: API semantics, stream ordering,
// default-stream barriers, context isolation, events, and error paths.
#include "cudart/cuda_runtime.hpp"

#include <gtest/gtest.h>

#include "gpu/device_props.hpp"
#include "simcore/simulation.hpp"

namespace strings::cuda {
namespace {

using sim::msec;
using sim::SimTime;
using E = cudaError_t;

constexpr std::size_t kMB = 1u << 20;

struct Fixture {
  explicit Fixture(int num_devices = 1) {
    auto props = gpu::tesla_c2050();
    props.copy_latency = 0;
    props.crowding_alpha = 0;
    props.pageable_factor = 1.0;
    for (int i = 0; i < num_devices; ++i) {
      devices.push_back(
          std::make_unique<gpu::GpuDevice>(sim, i, props));
    }
    std::vector<gpu::GpuDevice*> ptrs;
    for (auto& d : devices) ptrs.push_back(d.get());
    rt = std::make_unique<CudaRuntime>(sim, std::move(ptrs));
  }
  sim::Simulation sim;
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::unique_ptr<CudaRuntime> rt;
};

KernelLaunch kernel(SimTime dur, double occ = 1.0, double bw = 0.0) {
  return KernelLaunch{"k", gpu::KernelDesc{dur, occ, bw}};
}

TEST(CudaRuntime, DeviceEnumeration) {
  Fixture f(3);
  auto pid = f.rt->create_process();
  int count = 0;
  EXPECT_EQ(f.rt->cudaGetDeviceCount(pid, &count), E::cudaSuccess);
  EXPECT_EQ(count, 3);
  gpu::DeviceProps props;
  EXPECT_EQ(f.rt->cudaGetDeviceProperties(pid, &props, 0), E::cudaSuccess);
  EXPECT_EQ(props.name, "Tesla C2050");
  EXPECT_EQ(f.rt->cudaGetDeviceProperties(pid, &props, 5),
            E::cudaErrorInvalidDevice);
}

TEST(CudaRuntime, SetGetDevice) {
  Fixture f(2);
  auto pid = f.rt->create_process();
  int dev = -1;
  EXPECT_EQ(f.rt->cudaGetDevice(pid, &dev), E::cudaSuccess);
  EXPECT_EQ(dev, 0);
  EXPECT_EQ(f.rt->cudaSetDevice(pid, 1), E::cudaSuccess);
  EXPECT_EQ(f.rt->cudaGetDevice(pid, &dev), E::cudaSuccess);
  EXPECT_EQ(dev, 1);
  EXPECT_EQ(f.rt->cudaSetDevice(pid, 9), E::cudaErrorInvalidDevice);
}

TEST(CudaRuntime, MallocFreeAccounting) {
  Fixture f;
  auto pid = f.rt->create_process();
  DevPtr a = 0, b = 0;
  EXPECT_EQ(f.rt->cudaMalloc(pid, &a, 10 * kMB), E::cudaSuccess);
  EXPECT_EQ(f.rt->cudaMalloc(pid, &b, 20 * kMB), E::cudaSuccess);
  EXPECT_NE(a, b);
  EXPECT_EQ(f.devices[0]->memory_used(), 30 * kMB);
  EXPECT_EQ(f.rt->cudaFree(pid, a), E::cudaSuccess);
  EXPECT_EQ(f.devices[0]->memory_used(), 20 * kMB);
  EXPECT_EQ(f.rt->cudaFree(pid, a), E::cudaErrorInvalidDevicePointer);
  EXPECT_EQ(f.rt->cudaFree(pid, b), E::cudaSuccess);
}

TEST(CudaRuntime, MallocOutOfMemory) {
  Fixture f;
  auto pid = f.rt->create_process();
  DevPtr p = 0;
  // Tesla C2050 has 3 GiB.
  EXPECT_EQ(f.rt->cudaMalloc(pid, &p, std::size_t{4} << 30),
            E::cudaErrorMemoryAllocation);
  EXPECT_EQ(f.rt->cudaGetLastError(pid), E::cudaErrorMemoryAllocation);
  EXPECT_EQ(f.rt->cudaGetLastError(pid), E::cudaSuccess);  // cleared
}

TEST(CudaRuntime, SynchronousMemcpyBlocksForTransferTime) {
  Fixture f;
  auto pid = f.rt->create_process();
  SimTime done_at = -1;
  f.sim.spawn("app", [&] {
    DevPtr p = 0;
    ASSERT_EQ(f.rt->cudaMalloc(pid, &p, 60 * kMB), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaMemcpy(pid, p, 60'000'000,
                               cudaMemcpyKind::cudaMemcpyHostToDevice),
              E::cudaSuccess);
    done_at = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(done_at, msec(10));  // 60 MB at 6 GB/s
}

TEST(CudaRuntime, MemcpyRejectsUnknownPointer) {
  Fixture f;
  auto pid = f.rt->create_process();
  f.sim.spawn("app", [&] {
    EXPECT_EQ(f.rt->cudaMemcpy(pid, 0xDEAD, 16,
                               cudaMemcpyKind::cudaMemcpyHostToDevice),
              E::cudaErrorInvalidDevicePointer);
  });
  f.sim.run();
}

TEST(CudaRuntime, MemcpyAcceptsInteriorPointer) {
  Fixture f;
  auto pid = f.rt->create_process();
  f.sim.spawn("app", [&] {
    DevPtr p = 0;
    ASSERT_EQ(f.rt->cudaMalloc(pid, &p, 1024), E::cudaSuccess);
    EXPECT_EQ(f.rt->cudaMemcpy(pid, p + 512, 512,
                               cudaMemcpyKind::cudaMemcpyHostToDevice),
              E::cudaSuccess);
    EXPECT_EQ(f.rt->cudaMemcpy(pid, p + 512, 1024,
                               cudaMemcpyKind::cudaMemcpyHostToDevice),
              E::cudaErrorInvalidDevicePointer);  // overruns allocation
  });
  f.sim.run();
}

TEST(CudaRuntime, AsyncMemcpyReturnsImmediately) {
  Fixture f;
  auto pid = f.rt->create_process();
  SimTime after_call = -1, after_sync = -1;
  f.sim.spawn("app", [&] {
    DevPtr p = 0;
    ASSERT_EQ(f.rt->cudaMalloc(pid, &p, 60 * kMB), E::cudaSuccess);
    cudaStream_t s = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaMemcpyAsync(pid, p, 60'000'000,
                                    cudaMemcpyKind::cudaMemcpyHostToDevice, s),
              E::cudaSuccess);
    after_call = f.sim.now();
    ASSERT_EQ(f.rt->cudaStreamSynchronize(pid, s), E::cudaSuccess);
    after_sync = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(after_call, 0);
  EXPECT_EQ(after_sync, msec(10));
}

TEST(CudaRuntime, StreamOpsAreFifo) {
  Fixture f;
  auto pid = f.rt->create_process();
  SimTime done = -1;
  f.sim.spawn("app", [&] {
    cudaStream_t s = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s), E::cudaSuccess);
    // Two kernels on one stream serialize even though the device could
    // co-schedule them.
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.2), s),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.2), s),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaStreamSynchronize(pid, s), E::cudaSuccess);
    done = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(done, msec(20));
}

TEST(CudaRuntime, DifferentStreamsOverlap) {
  Fixture f;
  auto pid = f.rt->create_process();
  SimTime done = -1;
  f.sim.spawn("app", [&] {
    cudaStream_t s1 = 0, s2 = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s1), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s2), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.5), s1),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.5), s2),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid), E::cudaSuccess);
    done = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(done, msec(10));
}

TEST(CudaRuntime, DefaultStreamBarriersOtherStreams) {
  Fixture f;
  auto pid = f.rt->create_process();
  SimTime done = -1;
  f.sim.spawn("app", [&] {
    cudaStream_t s = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s), E::cudaSuccess);
    // s-kernel, then default-stream kernel, then s-kernel: the default op
    // must wait for the first and block the third.
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.2), s),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.2),
                                     cudaStreamDefault),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10), 0.2), s),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid), E::cudaSuccess);
    done = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(done, msec(30));
}

TEST(CudaRuntime, ConfigureCallRoutesLaunchToStream) {
  Fixture f;
  auto pid = f.rt->create_process();
  SimTime done = -1;
  f.sim.spawn("app", [&] {
    cudaStream_t s1 = 0, s2 = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s1), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s2), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaConfigureCall(pid, s1), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunch(pid, kernel(msec(10), 0.5)), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaConfigureCall(pid, s2), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunch(pid, kernel(msec(10), 0.5)), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid), E::cudaSuccess);
    done = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(done, msec(10));  // routed to different streams: overlap
}

TEST(CudaRuntime, SeparateProcessesGetSeparateContexts) {
  Fixture f;
  auto pid1 = f.rt->create_process();
  auto pid2 = f.rt->create_process();
  SimTime done = -1;
  f.sim.spawn("apps", [&] {
    // Kernels from different processes cannot space-share: the device
    // serializes the two contexts.
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid1, kernel(msec(10), 0.2),
                                     cudaStreamDefault),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid2, kernel(msec(10), 0.2),
                                     cudaStreamDefault),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid1), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid2), E::cudaSuccess);
    done = f.sim.now();
  });
  f.sim.run();
  // 10 + default ctx switch + 10.
  EXPECT_EQ(done, msec(20) + gpu::tesla_c2050().ctx_switch);
  EXPECT_EQ(f.devices[0]->counters().context_switches, 1);
}

TEST(CudaRuntime, ThreadExitReleasesMemoryAndContexts) {
  Fixture f;
  auto pid = f.rt->create_process();
  f.sim.spawn("app", [&] {
    DevPtr p = 0;
    ASSERT_EQ(f.rt->cudaMalloc(pid, &p, 100 * kMB), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(5)), cudaStreamDefault),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaThreadExit(pid), E::cudaSuccess);
    EXPECT_EQ(f.devices[0]->memory_used(), 0u);
    EXPECT_GE(f.sim.now(), msec(5));  // synchronized before teardown
  });
  f.sim.run();
}

TEST(CudaRuntime, EventsMeasureElapsedTime) {
  Fixture f;
  auto pid = f.rt->create_process();
  double ms = 0.0;
  f.sim.spawn("app", [&] {
    cudaStream_t s = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s), E::cudaSuccess);
    cudaEvent_t start = 0, stop = 0;
    ASSERT_EQ(f.rt->cudaEventCreate(pid, &start), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaEventCreate(pid, &stop), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaEventRecord(pid, start, s), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(25)), s), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaEventRecord(pid, stop, s), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaEventSynchronize(pid, stop), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaEventElapsedTime(pid, &ms, start, stop), E::cudaSuccess);
  });
  f.sim.run();
  EXPECT_DOUBLE_EQ(ms, 25.0);
}

TEST(CudaRuntime, StreamQueryReportsBusyThenReady) {
  Fixture f;
  auto pid = f.rt->create_process();
  f.sim.spawn("app", [&] {
    cudaStream_t s = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s), E::cudaSuccess);
    EXPECT_EQ(f.rt->cudaStreamQuery(pid, s), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10)), s), E::cudaSuccess);
    EXPECT_EQ(f.rt->cudaStreamQuery(pid, s), E::cudaErrorNotReady);
    ASSERT_EQ(f.rt->cudaStreamSynchronize(pid, s), E::cudaSuccess);
    EXPECT_EQ(f.rt->cudaStreamQuery(pid, s), E::cudaSuccess);
  });
  f.sim.run();
}

TEST(CudaRuntime, LaunchOnUnknownStreamFails) {
  Fixture f;
  auto pid = f.rt->create_process();
  EXPECT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(1)), 12345),
            E::cudaErrorInvalidResourceHandle);
}

TEST(CudaRuntime, ZeroDurationKernelRejected) {
  Fixture f;
  auto pid = f.rt->create_process();
  EXPECT_EQ(f.rt->cudaLaunchKernel(pid, kernel(0), cudaStreamDefault),
            E::cudaErrorLaunchFailure);
}

TEST(CudaRuntime, OutstandingOpsTracksQueueDepth) {
  Fixture f;
  auto pid = f.rt->create_process();
  f.sim.spawn("app", [&] {
    cudaStream_t s = 0;
    ASSERT_EQ(f.rt->cudaStreamCreate(pid, &s), E::cudaSuccess);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10)), s),
                E::cudaSuccess);
    }
    EXPECT_EQ(f.rt->outstanding_ops(pid, 0), 3);
    ASSERT_EQ(f.rt->cudaStreamSynchronize(pid, s), E::cudaSuccess);
    EXPECT_EQ(f.rt->outstanding_ops(pid, 0), 0);
  });
  f.sim.run();
}

TEST(CudaRuntime, MultiDeviceContextsIndependent) {
  Fixture f(2);
  auto pid = f.rt->create_process();
  SimTime done = -1;
  f.sim.spawn("app", [&] {
    ASSERT_EQ(f.rt->cudaSetDevice(pid, 0), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10)), cudaStreamDefault),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaSetDevice(pid, 1), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaLaunchKernel(pid, kernel(msec(10)), cudaStreamDefault),
              E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid), E::cudaSuccess);  // dev 1
    ASSERT_EQ(f.rt->cudaSetDevice(pid, 0), E::cudaSuccess);
    ASSERT_EQ(f.rt->cudaDeviceSynchronize(pid), E::cudaSuccess);  // dev 0
    done = f.sim.now();
  });
  f.sim.run();
  EXPECT_EQ(done, msec(10));  // devices run in parallel
}

TEST(CudaRuntime, DestroyProcessIsIdempotent) {
  Fixture f;
  auto pid = f.rt->create_process();
  f.sim.spawn("app", [&] {
    f.rt->destroy_process(pid);
    f.rt->destroy_process(pid);
    EXPECT_EQ(f.rt->cudaSetDevice(pid, 0), E::cudaErrorInvalidValue);
  });
  f.sim.run();
}

}  // namespace
}  // namespace strings::cuda
