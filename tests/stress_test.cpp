// Stress tests: many concurrent applications, deep queues, and rapid
// churn across the full stack. These verify robustness (no deadlocks, no
// leaks, bounded teardown) rather than specific timings.
#include <gtest/gtest.h>

#include "workloads/service.hpp"
#include "workloads/testbed.hpp"

namespace strings::workloads {
namespace {

TEST(Stress, ManyTenantsOnSupernode) {
  sim::Simulation sim;
  TestbedConfig cfg;
  cfg.mode = Mode::kStrings;
  cfg.nodes = supernode();
  cfg.balancing_policy = "GMin";
  cfg.device_policy = "PS";
  Testbed bed(sim, cfg);
  std::vector<ArrivalConfig> streams;
  const char* apps[] = {"BS", "MC", "GA", "SN"};
  for (int i = 0; i < 8; ++i) {
    ArrivalConfig a;
    a.app = apps[i % 4];
    a.origin = i % 2;
    a.requests = 4;
    a.lambda_scale = 0.3;
    a.server_threads = 3;
    a.seed = static_cast<std::uint32_t>(100 + i);
    a.tenant = "tenant" + std::to_string(i);
    streams.push_back(std::move(a));
  }
  const auto stats = run_streams(bed, streams);
  int total = 0, errors = 0;
  for (const auto& s : stats) {
    total += s.completed;
    errors += s.errors;
  }
  EXPECT_EQ(total, 32);
  EXPECT_EQ(errors, 0);
  for (core::Gid g = 0; g < bed.gpu_count(); ++g) {
    EXPECT_EQ(bed.device(g).memory_used(), 0u) << "gid " << g;
  }
}

TEST(Stress, RapidChurnOfTinyRequests) {
  // 60 one-iteration requests churning registrations, streams, and PMT
  // entries through a single packed GPU.
  sim::Simulation sim;
  TestbedConfig cfg;
  cfg.mode = Mode::kStrings;
  cfg.nodes = {{gpu::tesla_c2050()}};
  cfg.device_policy = "TFS";
  Testbed bed(sim, cfg);
  AppProfile tiny;
  tiny.name = "T";
  tiny.iterations = 1;
  tiny.cpu_per_iter = sim::usec(100);
  tiny.h2d_bytes_per_iter = 100'000;
  tiny.d2h_bytes_per_iter = 50'000;
  tiny.kernels_per_iter = 1;
  tiny.kernel = gpu::KernelDesc{sim::usec(500), 0.3, 1.0};
  tiny.alloc_bytes = 200'000;
  int done = 0, errors = 0;
  for (int i = 0; i < 60; ++i) {
    sim.spawn("r" + std::to_string(i), [&bed, &sim, &done, &errors, tiny, i] {
      sim.wait_for(sim::usec(50 * i));
      backend::AppDescriptor desc;
      desc.app_type = "T";
      desc.tenant = "t" + std::to_string(i % 5);
      auto api = bed.make_api(desc);
      const auto r = run_app(sim, *api, tiny);
      errors += r.errors;
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 60);
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(bed.device(0).memory_used(), 0u);
  EXPECT_EQ(bed.daemon(0).packer(0).packed_apps(), 0);
  EXPECT_TRUE(bed.daemon(0).packer(0).pmt().empty());
  // Every binding released at the mapper.
  EXPECT_EQ(bed.mapper().dst().row(0).load, 0);
  EXPECT_EQ(bed.mapper().dst().row(0).total_bound, 60);
}

TEST(Stress, PsKeepsAllThreeEnginesBusyUnderMixedPhases) {
  // Three phase-contrasting tenants saturate one GPU under PS: the phase-
  // selection dispatcher should overlap the engines enough that total
  // engine busy time clearly exceeds the makespan (impossible without
  // concurrent engine use).
  sim::Simulation sim;
  TestbedConfig cfg;
  cfg.mode = Mode::kStrings;
  cfg.nodes = {{gpu::tesla_c2050()}};
  cfg.device_policy = "PS";
  Testbed bed(sim, cfg);
  ArrivalConfig up;  // H2D-heavy
  up.app = "MC";
  up.requests = 3;
  up.lambda_scale = 0.05;
  up.server_threads = 3;
  up.seed = 1;
  up.tenant = "up";
  ArrivalConfig kern = up;  // kernel-heavy
  kern.app = "DC";
  kern.requests = 2;
  kern.seed = 2;
  kern.tenant = "kern";
  ArrivalConfig down = up;  // D2H-ish (SN moves lots back)
  down.app = "SN";
  down.requests = 3;
  down.seed = 3;
  down.tenant = "down";
  const auto stats = run_streams(bed, {up, kern, down});
  sim::SimTime makespan = 0;
  for (const auto& s : stats) makespan = std::max(makespan, s.makespan);
  const auto& c = bed.device(0).counters();
  const double busy = sim::to_seconds(c.compute_busy_time + c.h2d_busy_time +
                                      c.d2h_busy_time);
  EXPECT_GT(busy, 1.15 * sim::to_seconds(makespan));
}

}  // namespace
}  // namespace strings::workloads
