// Focused tests of the GPU scheduler's bookkeeping formulas against the
// paper's definitions: the CGS decay of eq. (1), per-epoch service deltas,
// and TFS entitlement accrual / work conservation.
#include <gtest/gtest.h>

#include "core/gpu_scheduler.hpp"

namespace strings::core {
namespace {

using sim::msec;
using sim::SimTime;

gpu::GpuDevice::Op kernel_op(SimTime start, SimTime end) {
  gpu::GpuDevice::Op op;
  op.kind = gpu::GpuDevice::OpKind::kKernel;
  op.submitted = start;
  op.started = start;
  op.completed = end;
  return op;
}

struct Fixture {
  explicit Fixture(const std::string& policy = "AllAwake",
                   double las_k = 0.8) {
    GpuScheduler::Config cfg;
    cfg.epoch = msec(10);
    cfg.las_k = las_k;
    sched = std::make_unique<GpuScheduler>(
        sim, 0, policies::make_device_policy(policy), cfg);
  }
  int add_app(const std::string& tenant, double weight = 1.0,
              int backlog = 1) {
    GpuScheduler::RcbInit init;
    init.app_type = "X";
    init.tenant = tenant;
    init.tenant_weight = weight;
    init.backlog_probe = [backlog] { return backlog; };
    const int id = sched->register_app(init);
    sched->ack(id);
    return id;
  }
  sim::Simulation sim;
  std::unique_ptr<GpuScheduler> sched;
};

TEST(SchedulerMath, CgsFollowsEquationOne) {
  // CGSn = k*GSn + (1-k)*CGSn-1 with k = 0.8 (paper eq. 1).
  Fixture f("LAS", 0.8);
  const int id = f.add_app("A");

  // Epoch 1: 4ms of service.
  f.sched->on_op_complete(id, kernel_op(0, msec(4)));
  f.sim.run_until(msec(10));
  double expected = 0.8 * static_cast<double>(msec(4)) + 0.2 * 0.0;
  auto snaps = f.sched->snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].cgs, expected);

  // Epoch 2: 2ms of service.
  f.sched->on_op_complete(id, kernel_op(msec(10), msec(12)));
  f.sim.run_until(msec(20));
  expected = 0.8 * static_cast<double>(msec(2)) + 0.2 * expected;
  EXPECT_DOUBLE_EQ(f.sched->snapshot()[0].cgs, expected);

  // Epoch 3: idle; CGS decays toward zero.
  f.sim.run_until(msec(30));
  expected = 0.8 * 0.0 + 0.2 * expected;
  EXPECT_DOUBLE_EQ(f.sched->snapshot()[0].cgs, expected);
}

TEST(SchedulerMath, EpochServiceIsPerEpochDelta) {
  Fixture f;
  const int id = f.add_app("A");
  f.sched->on_op_complete(id, kernel_op(0, msec(3)));
  f.sim.run_until(msec(10));
  EXPECT_EQ(f.sched->snapshot()[0].epoch_service, msec(3));
  // No service in epoch 2.
  f.sim.run_until(msec(20));
  EXPECT_EQ(f.sched->snapshot()[0].epoch_service, 0);
  EXPECT_EQ(f.sched->snapshot()[0].total_service, msec(3));
}

TEST(SchedulerMath, EntitlementSplitsByWeightAmongBacklogged) {
  Fixture f("TFS");
  const int a = f.add_app("A", /*weight=*/3.0);
  const int b = f.add_app("B", /*weight=*/1.0);
  f.sim.run_until(msec(10));  // one epoch
  const auto snaps = f.sched->snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  SimTime ent_a = 0, ent_b = 0;
  for (const auto& s : snaps) {
    if (s.tenant == "A") ent_a = s.entitled;
    if (s.tenant == "B") ent_b = s.entitled;
  }
  // 10ms epoch split 3:1.
  EXPECT_NEAR(static_cast<double>(ent_a), static_cast<double>(msec(10)) * 0.75,
              1.0);
  EXPECT_NEAR(static_cast<double>(ent_b), static_cast<double>(msec(10)) * 0.25,
              1.0);
  (void)a;
  (void)b;
}

TEST(SchedulerMath, IdleTenantAccruesNoEntitlement) {
  // Work conservation: an idle tenant's share goes to the backlogged one.
  Fixture f("TFS");
  GpuScheduler::RcbInit idle;
  idle.app_type = "X";
  idle.tenant = "idle";
  idle.tenant_weight = 1.0;
  idle.backlog_probe = [] { return 0; };
  const int idle_id = f.sched->register_app(idle);
  f.sched->ack(idle_id);
  const int busy_id = f.add_app("busy", 1.0, /*backlog=*/1);
  f.sim.run_until(msec(10));
  for (const auto& s : f.sched->snapshot()) {
    if (s.tenant == "idle") {
      EXPECT_EQ(s.entitled, 0);
    }
    if (s.tenant == "busy") {
      EXPECT_NEAR(static_cast<double>(s.entitled),
                  static_cast<double>(msec(10)), 1.0);
    }
  }
  (void)busy_id;
}

TEST(SchedulerMath, EpochTimerStopsWhenEmptyAndRearms) {
  Fixture f;
  const int id = f.add_app("A");
  f.sim.run_until(msec(25));
  const auto epochs_before = f.sched->epochs_run();
  EXPECT_GE(epochs_before, 2);
  f.sched->unregister_app(id);
  f.sim.run();  // queue must drain: no armed timer with an empty RCB
  // Re-registering re-arms the dispatcher.
  const int id2 = f.add_app("B");
  f.sim.run_until(f.sim.now() + msec(15));
  EXPECT_GT(f.sched->epochs_run(), epochs_before);
  f.sched->unregister_app(id2);
}

TEST(SchedulerMath, BytesAccessedGiveTableOneBandwidth) {
  // mem_bw = total kernel data accesses / total GPU time (paper's MBF
  // definition): a kernel demanding 10 GB/s for its 10ms nominal duration
  // that actually ran dilated to 20ms reports 10e9*0.01 / 0.02 = 5 GB/s.
  Fixture f;
  const int id = f.add_app("A");
  gpu::GpuDevice::Op op = kernel_op(0, msec(20));  // dilated 2x
  op.kernel.nominal_duration = msec(10);
  op.kernel.bw_demand_gbps = 10.0;
  f.sched->on_op_complete(id, op);
  const FeedbackRecord rec = f.sched->unregister_app(id);
  EXPECT_NEAR(rec.mem_bw_gbps, 5.0, 1e-9);
}

}  // namespace
}  // namespace strings::core
