# Asserts a command exits with an exact code (ctest's WILL_FAIL only checks
# non-zero, which can't tell a flag-parse error (2) from an invariant
# violation (3)). Usage:
#   cmake -DCMD=<binary> -DARGS=<;-list> -DEXPECTED=<code> -P check_exit_code.cmake
execute_process(COMMAND ${CMD} ${ARGS} RESULT_VARIABLE actual
                OUTPUT_QUIET ERROR_QUIET)
if(NOT actual EQUAL ${EXPECTED})
  message(FATAL_ERROR
          "${CMD} ${ARGS}: expected exit ${EXPECTED}, got ${actual}")
endif()
