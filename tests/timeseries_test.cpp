// obs::TimeSeries — the windowed-aggregation contract: tumbling windows
// over the cumulative Registry, delta/rate reducers, window-local
// histogram quantiles that agree with the whole-run Registry math, a
// bounded retention ring, and a deterministic JSONL rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "simcore/sim_time.hpp"

namespace strings::obs {
namespace {

TimeSeries::Config cfg(sim::SimTime window, std::size_t retain = 256) {
  TimeSeries::Config c;
  c.window = window;
  c.retain = retain;
  return c;
}

TEST(TimeSeries, EmptyWindowStillCloses) {
  Registry reg;
  TimeSeries ts(cfg(sim::msec(10)));
  const Window& w = ts.close_window(reg, sim::msec(10));
  EXPECT_EQ(w.index, 0u);
  EXPECT_EQ(w.start, 0);
  EXPECT_EQ(w.end, sim::msec(10));
  EXPECT_FALSE(w.partial);
  EXPECT_TRUE(w.series.empty());
  EXPECT_TRUE(w.hists.empty());
  EXPECT_EQ(ts.windows_closed(), 1u);
  EXPECT_EQ(ts.last_end(), sim::msec(10));
}

TEST(TimeSeries, SingleSampleCounterDeltaAndRate) {
  Registry reg;
  TimeSeries ts(cfg(sim::msec(10)));
  reg.counter("a/b").inc(3);
  const Window& w1 = ts.close_window(reg, sim::msec(10));
  ASSERT_EQ(w1.series.count("a/b"), 1u);
  EXPECT_DOUBLE_EQ(w1.series.at("a/b").value, 3.0);
  // First sighting: the whole cumulative value is this window's delta.
  EXPECT_DOUBLE_EQ(w1.series.at("a/b").delta, 3.0);

  reg.counter("a/b").inc(2);
  const Window& w2 = ts.close_window(reg, sim::msec(20));
  EXPECT_DOUBLE_EQ(w2.series.at("a/b").value, 5.0);
  EXPECT_DOUBLE_EQ(w2.series.at("a/b").delta, 2.0);

  // Reducers over the closed window.
  EXPECT_DOUBLE_EQ(*reduce_window(w2, "a/b", "value"), 5.0);
  EXPECT_DOUBLE_EQ(*reduce_window(w2, "a/b", "delta"), 2.0);
  EXPECT_DOUBLE_EQ(*reduce_window(w2, "a/b", "rate"), 2.0 / 0.01);
  EXPECT_FALSE(reduce_window(w2, "a/b", "p99").has_value());  // not a hist
  EXPECT_FALSE(reduce_window(w2, "missing", "value").has_value());
}

TEST(TimeSeries, FlatSeriesStaysVisibleWithZeroDelta) {
  Registry reg;
  TimeSeries ts(cfg(sim::msec(10)));
  reg.counter("flat").inc(7);
  ts.close_window(reg, sim::msec(10));
  const Window& w2 = ts.close_window(reg, sim::msec(20));
  // Rule evaluation must still see the series even when nothing changed.
  ASSERT_EQ(w2.series.count("flat"), 1u);
  EXPECT_DOUBLE_EQ(w2.series.at("flat").value, 7.0);
  EXPECT_DOUBLE_EQ(w2.series.at("flat").delta, 0.0);
}

TEST(TimeSeries, PartialWindowAtRunEnd) {
  Registry reg;
  TimeSeries ts(cfg(sim::msec(10)));
  reg.counter("c").inc();
  ts.close_window(reg, sim::msec(10));
  reg.counter("c").inc();
  // The run drained 3 ms into the next window: close it partial.
  const Window& w = ts.close_window(reg, sim::msec(13), /*partial=*/true);
  EXPECT_TRUE(w.partial);
  EXPECT_EQ(w.start, sim::msec(10));
  EXPECT_EQ(w.end, sim::msec(13));
  EXPECT_DOUBLE_EQ(w.series.at("c").delta, 1.0);
  // Rate uses the actual (short) window span, not the configured width.
  EXPECT_DOUBLE_EQ(*reduce_window(w, "c", "rate"), 1.0 / 0.003);
}

TEST(TimeSeries, WindowExactlyAtRunEndIsFull) {
  Registry reg;
  TimeSeries ts(cfg(sim::msec(10)));
  const Window& w = ts.close_window(reg, sim::msec(10), /*partial=*/false);
  EXPECT_FALSE(w.partial);
  EXPECT_DOUBLE_EQ(w.seconds(), 0.01);
}

TEST(TimeSeries, WindowQuantilesMatchRegistryHistogramMath) {
  Registry reg;
  auto& h = reg.histogram("lat", default_latency_buckets_ms());
  // All observations land in one window, so the window-local quantile must
  // equal histogram_quantile over the Registry's own cumulative buckets.
  for (double v : {0.2, 0.7, 3.0, 8.0, 40.0, 40.0, 90.0, 600.0}) h.observe(v);

  TimeSeries ts(cfg(sim::msec(10)));
  const Window& w = ts.close_window(reg, sim::msec(10));
  ASSERT_EQ(w.hists.count("lat"), 1u);
  const WindowHistogram& wh = w.hists.at("lat");
  EXPECT_EQ(wh.count, h.count());
  EXPECT_DOUBLE_EQ(wh.sum, h.sum());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(wh.quantile(q),
                     histogram_quantile(h.bounds(), h.cumulative(), q))
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(*reduce_window(w, "lat", "mean"), h.sum() / h.count());
  // delta/rate on a histogram name read the window observation count.
  EXPECT_DOUBLE_EQ(*reduce_window(w, "lat", "delta"), double(h.count()));
}

TEST(TimeSeries, HistogramWindowsAreDeltas) {
  Registry reg;
  auto& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(50.0);
  TimeSeries ts(cfg(sim::msec(10)));
  ts.close_window(reg, sim::msec(10));

  h.observe(5.0);  // the only observation of window 2
  const Window& w2 = ts.close_window(reg, sim::msec(20));
  const WindowHistogram& wh = w2.hists.at("lat");
  EXPECT_EQ(wh.count, 1);
  EXPECT_DOUBLE_EQ(wh.sum, 5.0);
  ASSERT_EQ(wh.cum.size(), 4u);  // 3 finite bounds + inf
  EXPECT_EQ(wh.cum[0], 0);       // <= 1
  EXPECT_EQ(wh.cum[1], 1);       // <= 10
  EXPECT_EQ(wh.cum[3], 1);

  // A quiet histogram disappears from subsequent windows entirely.
  const Window& w3 = ts.close_window(reg, sim::msec(30));
  EXPECT_EQ(w3.hists.count("lat"), 0u);
  EXPECT_FALSE(reduce_window(w3, "lat", "p99").has_value());
}

TEST(TimeSeries, QuantileClampsToLastFiniteBound) {
  // Observations past the top bucket have no upper edge to interpolate to.
  std::vector<double> bounds{1.0, 10.0};
  std::vector<std::int64_t> cum{0, 0, 5};  // all 5 beyond 10
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cum, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cum, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile({}, {}, 0.5), 0.0);  // empty
}

TEST(TimeSeries, RetentionRingIsBounded) {
  Registry reg;
  TimeSeries ts(cfg(sim::msec(1), /*retain=*/4));
  for (int i = 1; i <= 10; ++i) ts.close_window(reg, sim::msec(i));
  EXPECT_EQ(ts.windows_closed(), 10u);
  ASSERT_EQ(ts.windows().size(), 4u);
  EXPECT_EQ(ts.windows().front().index, 6u);  // oldest retained
  EXPECT_EQ(ts.windows().back().index, 9u);
}

TEST(TimeSeries, ReducerNameValidation) {
  for (const char* r : {"value", "delta", "rate", "mean", "p50", "p95", "p99"})
    EXPECT_TRUE(is_valid_reducer(r)) << r;
  EXPECT_FALSE(is_valid_reducer("p42"));
  EXPECT_FALSE(is_valid_reducer(""));
  EXPECT_FALSE(is_valid_reducer("max"));
}

TEST(TimeSeries, StreamLineIsDeterministicAndOmitsFlatSeries) {
  auto render = [] {
    Registry reg;
    reg.counter("x/changed").inc(4);
    reg.counter("x/flat").inc(1);
    auto& h = reg.histogram("lat", {1.0, 10.0});
    TimeSeries ts(cfg(sim::msec(10)));
    ts.close_window(reg, sim::msec(10));
    reg.counter("x/changed").inc(2);
    h.observe(3.0);
    std::ostringstream os;
    write_stream_line(os, ts.close_window(reg, sim::msec(20)));
    return os.str();
  };
  const std::string a = render();
  EXPECT_EQ(a, render());  // byte-identical across repeated runs
  EXPECT_NE(a.find("\"schema\":\"strings.stream.v1\""), std::string::npos);
  EXPECT_NE(a.find("x/changed"), std::string::npos);
  // x/flat did not move this window, so the line omits it.
  EXPECT_EQ(a.find("x/flat"), std::string::npos);
  EXPECT_NE(a.find("\"lat\""), std::string::npos);
  EXPECT_EQ(a.back(), '\n');
  EXPECT_EQ(a.find('\n'), a.size() - 1);  // exactly one line
}

TEST(TimeSeries, NonFiniteGaugeRendersAsNull) {
  Registry reg;
  reg.gauge_fn("bad", [] { return std::nan(""); });
  TimeSeries ts(cfg(sim::msec(10)));
  std::ostringstream os;
  write_stream_line(os, ts.close_window(reg, sim::msec(10)));
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_NE(os.str().find("null"), std::string::npos);
}

}  // namespace
}  // namespace strings::obs
