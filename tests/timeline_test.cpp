// Tests for the ASCII timeline renderer and the tracer reducers it uses.
#include "metrics/timeline.hpp"

#include <gtest/gtest.h>

#include "gpu/gpu_device.hpp"
#include "simcore/simulation.hpp"

namespace strings::metrics {
namespace {

using sim::msec;

gpu::UtilizationSample sample(sim::SimTime t, double compute, int resident,
                              bool switching = false, double bw = 0.0) {
  gpu::UtilizationSample s;
  s.time = t;
  s.compute_util = compute;
  s.bw_util = bw;
  s.resident_kernels = resident;
  s.switching = switching;
  return s;
}

TEST(Timeline, IdleTraceRendersSpaces) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 0.0, 0));
  TimelineOptions opt;
  opt.columns = 10;
  opt.end = msec(10);
  EXPECT_EQ(render_utilization_row(tr, opt), std::string(10, ' '));
}

TEST(Timeline, BusyHalfShowsLoadGlyphs) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 1.0, 1));
  tr.record(sample(msec(5), 0.0, 0));
  TimelineOptions opt;
  opt.columns = 10;
  opt.end = msec(10);
  const std::string row = render_utilization_row(tr, opt);
  ASSERT_EQ(row.size(), 10u);
  EXPECT_EQ(row.substr(0, 5), "@@@@@");
  EXPECT_EQ(row.substr(5), "     ");
}

TEST(Timeline, SwitchingShowsGlitchGlyph) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 0.0, 0, /*switching=*/true));
  tr.record(sample(msec(5), 1.0, 1));
  TimelineOptions opt;
  opt.columns = 10;
  opt.end = msec(10);
  const std::string row = render_utilization_row(tr, opt);
  EXPECT_EQ(row[0], 'x');
  EXPECT_EQ(row[9], '@');
}

TEST(Timeline, CopyOnlyShowsDash) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 0.0, 0, false, /*bw=*/0.5));
  TimelineOptions opt;
  opt.columns = 4;
  opt.end = msec(4);
  EXPECT_EQ(render_utilization_row(tr, opt), "----");
}

TEST(Timeline, MultiDeviceRowsAlignWithLabels) {
  gpu::UtilizationTracer a(true), b(true);
  a.record(sample(0, 1.0, 1));
  a.record(sample(msec(10), 0.0, 0));
  b.record(sample(0, 0.0, 0));
  TimelineOptions opt;
  opt.columns = 8;
  opt.end = msec(10);
  const std::string out = render_timeline({{"gpu0", &a}, {"g1", &b}}, opt);
  EXPECT_NE(out.find("gpu0 |@@@@@@@@|"), std::string::npos);
  EXPECT_NE(out.find("g1   |        |"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("0.010s"), std::string::npos);
}

TEST(Timeline, EndToEndWithRealDevice) {
  sim::Simulation sim;
  auto props = gpu::tesla_c2050();
  props.copy_latency = 0;
  gpu::GpuDevice dev(sim, 0, props, /*trace=*/true);
  sim.spawn("app", [&] {
    auto op = dev.submit_kernel(1, gpu::KernelDesc{msec(10), 0.9, 0});
    dev.wait(op);
    sim.wait_for(msec(10));
  });
  sim.run();
  TimelineOptions opt;
  opt.columns = 20;
  opt.end = msec(20);
  const std::string row = render_utilization_row(dev.tracer(), opt);
  // Busy first half, idle second half.
  EXPECT_NE(row[2], ' ');
  EXPECT_EQ(row[15], ' ');
}

TEST(Tracer, IdleGapCountFindsGaps) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 1.0, 1));
  tr.record(sample(msec(10), 0.0, 0));  // gap 10..30 (20ms)
  tr.record(sample(msec(30), 1.0, 1));
  tr.record(sample(msec(40), 0.0, 0));  // gap 40..42 (2ms: below min)
  tr.record(sample(msec(42), 1.0, 1));
  tr.record(sample(msec(50), 0.0, 0));  // tail gap 50..60 (10ms)
  EXPECT_EQ(tr.idle_gap_count(0, msec(60), msec(5)), 2);
  EXPECT_EQ(tr.idle_gap_count(0, msec(60), msec(1)), 3);
}

TEST(Tracer, CovZeroForConstantUtilization) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 0.5, 1));
  EXPECT_NEAR(tr.compute_util_cov(0, msec(100), msec(10)), 0.0, 1e-12);
}

TEST(Tracer, CovPositiveForBurstyUtilization) {
  gpu::UtilizationTracer tr(true);
  tr.record(sample(0, 1.0, 1));
  tr.record(sample(msec(50), 0.0, 0));
  // Half busy, half idle on a 10ms grid: CoV = 1.
  EXPECT_NEAR(tr.compute_util_cov(0, msec(100), msec(10)), 1.0, 1e-9);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  gpu::UtilizationTracer tr(false);
  tr.record(sample(0, 1.0, 1));
  EXPECT_TRUE(tr.samples().empty());
  EXPECT_DOUBLE_EQ(tr.mean_compute_util(0, msec(10)), 0.0);
}

}  // namespace
}  // namespace strings::metrics
