// Tests for obs::prof — the critical-path profiler.
//
// Covers the interval-claim sweep (exclusive buckets summing exactly to
// wall-clock, including under pipelined overlap), the latency digest, the
// fairness accounting (Jain's index must equal metrics::jain_fairness;
// attained service must equal the testbed's LAS accumulator), the
// zero-overhead contract (--prof leaves the trace byte-identical), and the
// RequestTrace ordering contract the sweep is built around: timestamps are
// monotone only within one side of the stack once the non-blocking RPC
// path pipelines calls.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "obs/prof.hpp"
#include "workloads/scenario_config.hpp"

namespace strings {
namespace {

using obs::ReqPhase;
using obs::RequestTrace;
using obs::prof::Bucket;

constexpr sim::SimTime kMs = sim::msec(1);

obs::prof::ProfRequest make_request() {
  obs::prof::ProfRequest req;
  req.app_id = 7;
  req.app_type = "MC";
  req.tenant = "pricing-svc";
  req.origin = 0;
  req.gid = 2;
  req.node = 1;
  return req;
}

// --- the interval-claim sweep -------------------------------------------

TEST(ProfSweep, SequentialLifecyclePartitionsWallClock) {
  obs::prof::ProfRequest req = make_request();
  req.issued_at = 0;
  req.completed_at = 100 * kMs;
  req.steps = {
      {ReqPhase::kIssue, 0},
      {ReqPhase::kBind, 5 * kMs},          // bind:    5..10
      {ReqPhase::kMarshal, 10 * kMs},      // marshal: 10..12
      {ReqPhase::kTransit, 12 * kMs},      // transit: 12..20
      {ReqPhase::kBackendQueue, 20 * kMs}, // queue:   20..30
      {ReqPhase::kBackendStart, 30 * kMs},
      {ReqPhase::kDispatchWait, 35 * kMs}, // gate:    35..40
      {ReqPhase::kExecute, 40 * kMs},      // execute: 30..90 minus gate
      {ReqPhase::kBackendDone, 90 * kMs},
      {ReqPhase::kComplete, 100 * kMs},
  };
  const obs::prof::RequestProfile p = obs::prof::profile_request(req);

  EXPECT_EQ(p.wall, 100 * kMs);
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kBind)], 5 * kMs);
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kMarshal)], 2 * kMs);
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kTransit)], 8 * kMs);
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kBackendQueue)], 10 * kMs);
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kDispatchWait)], 5 * kMs);
  // Execute spans kBackendStart..kBackendDone; the gate wait inside it is
  // claimed by the higher-priority dispatch_wait bucket.
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kExecute)], 55 * kMs);
  // Uncovered remainder (90..100 plus 0..5) is frontend/host time.
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kFrontend)], 15 * kMs);

  sim::SimTime sum = 0;
  for (const sim::SimTime t : p.by_bucket) sum += t;
  EXPECT_EQ(sum, p.wall);  // exclusive buckets: no loss, no double-count

  EXPECT_EQ(p.critical, Bucket::kExecute);
  EXPECT_EQ(p.resource, "gpu2.engines");
}

TEST(ProfSweep, PipelinedOverlapStillSumsToWallClock) {
  // Two calls in flight at once: the frontend marshals and sends call 2
  // while call 1 is still queued at the backend. Intervals overlap; the
  // sweep must still partition wall-clock exactly.
  obs::prof::ProfRequest req = make_request();
  req.issued_at = 0;
  req.completed_at = 50 * kMs;
  req.steps = {
      {ReqPhase::kIssue, 0},
      {ReqPhase::kMarshal, 2 * kMs},        // call 1 marshal
      {ReqPhase::kTransit, 4 * kMs},        // call 1 in transit
      {ReqPhase::kMarshal, 6 * kMs},        // call 2 marshal (pipelined)
      {ReqPhase::kTransit, 8 * kMs},        // call 2 in transit
      {ReqPhase::kBackendQueue, 10 * kMs},  // call 1 delivered
      {ReqPhase::kBackendStart, 12 * kMs},
      {ReqPhase::kBackendQueue, 14 * kMs},  // call 2 delivered
      {ReqPhase::kBackendDone, 20 * kMs},   // call 1 done
      {ReqPhase::kBackendStart, 20 * kMs},
      {ReqPhase::kBackendDone, 45 * kMs},   // call 2 done
      {ReqPhase::kComplete, 50 * kMs},
  };
  const obs::prof::RequestProfile p = obs::prof::profile_request(req);
  sim::SimTime sum = 0;
  for (const sim::SimTime t : p.by_bucket) sum += t;
  EXPECT_EQ(sum, p.wall);
  EXPECT_EQ(p.wall, 50 * kMs);
  // Execution covers 12..45 continuously; it outranks the overlapping
  // transit/queue intervals in the sweep.
  EXPECT_EQ(p.by_bucket[static_cast<int>(Bucket::kExecute)], 33 * kMs);
  EXPECT_EQ(p.critical, Bucket::kExecute);
}

TEST(ProfSweep, TransitBlamesTheInterNodeLink) {
  obs::prof::ProfRequest req = make_request();
  req.origin = 0;
  req.node = 3;
  req.issued_at = 0;
  req.completed_at = 10 * kMs;
  req.steps = {
      {ReqPhase::kIssue, 0},
      {ReqPhase::kTransit, 1 * kMs},
      {ReqPhase::kBackendQueue, 9 * kMs},
      {ReqPhase::kComplete, 10 * kMs},
  };
  const obs::prof::RequestProfile p = obs::prof::profile_request(req);
  EXPECT_EQ(p.critical, Bucket::kTransit);
  EXPECT_EQ(p.resource, "link.n0-n3");
}

// --- the latency digest --------------------------------------------------

TEST(ProfDigest, QuantilesAreClampedToObservedRange) {
  obs::prof::Digest d;
  for (int i = 1; i <= 100; ++i) d.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
  EXPECT_EQ(d.count, 100);
  EXPECT_DOUBLE_EQ(d.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(d.max_ms, 100.0);
  const double p50 = d.quantile(0.5);
  const double p99 = d.quantile(0.99);
  EXPECT_GE(p50, d.min_ms);
  EXPECT_LE(p50, d.max_ms);
  EXPECT_LE(p50, p99);          // quantiles are monotone
  EXPECT_GE(p99, 50.0);         // p99 lands in the upper buckets
  EXPECT_LE(d.quantile(1.0), d.max_ms);
  EXPECT_GE(d.quantile(0.0), 0.0);
}

TEST(ProfDigest, EmptyDigestIsZero) {
  obs::prof::Digest d;
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 0.0);
}

// --- live-run fairness accounting ---------------------------------------

const char kTwoTenantScenario[] = R"(
mode = strings
topology = supernode
balancing = GWtMin
device_policy = PS
trace = true

[stream]
app = MC
origin = 0
requests = 4
lambda_scale = 0.35
server_threads = 4
tenant = pricing-svc
weight = 2.0

[stream]
app = BS
origin = 1
requests = 4
lambda_scale = 0.35
server_threads = 4
tenant = options-svc
weight = 1.0
)";

struct ProfiledRun {
  ProfiledRun() {
    cfg = workloads::parse_scenario(std::string(kTwoTenantScenario));
    bed = std::make_unique<workloads::Testbed>(sim, cfg.testbed);
    stats = workloads::run_streams(*bed, cfg.streams);
    report = obs::prof::profile(obs::prof::input_from_tracer(*bed->tracer()));
  }
  sim::Simulation sim;
  workloads::ScenarioConfig cfg;
  std::unique_ptr<workloads::Testbed> bed;
  std::vector<workloads::StreamStats> stats;
  obs::prof::Report report;
};

TEST(ProfFairness, AttainedServiceMatchesTestbedAccumulator) {
  ProfiledRun run;
  ASSERT_EQ(run.report.tenants.size(), 2u);
  for (const auto& [tenant, acct] : run.report.tenants) {
    SCOPED_TRACE(tenant);
    // The profiler re-derives engine residency from KL/H2D/D2H spans; it
    // must agree exactly with the LAS accumulator in core/gpu_scheduler.
    EXPECT_DOUBLE_EQ(sim::to_seconds(acct.attained_ns),
                     run.bed->attained_service_s(tenant));
    EXPECT_GT(acct.attained_ns, 0);
    EXPECT_EQ(acct.requests, 4);
  }
  EXPECT_DOUBLE_EQ(run.report.tenants.at("pricing-svc").weight, 2.0);
  EXPECT_DOUBLE_EQ(run.report.tenants.at("options-svc").weight, 1.0);
}

TEST(ProfFairness, JainIndexMatchesMetricsLibrary) {
  ProfiledRun run;
  std::vector<double> attained, shares;
  for (const auto& [tenant, acct] : run.report.tenants) {
    attained.push_back(sim::to_seconds(acct.attained_ns));
    shares.push_back(acct.weight);
  }
  EXPECT_DOUBLE_EQ(run.report.jain,
                   metrics::jain_fairness(attained, shares));
  EXPECT_GT(run.report.jain, 0.0);
  EXPECT_LE(run.report.jain, 1.0);
}

TEST(ProfFairness, SlowdownIsAtLeastOne) {
  ProfiledRun run;
  for (const auto& [tenant, acct] : run.report.tenants) {
    SCOPED_TRACE(tenant);
    EXPECT_GE(acct.slowdown(), 1.0);
    EXPECT_LE(acct.contention_ns, acct.wall_ns);
  }
}

TEST(ProfReport, AllRequestsCompleteAndRenderIsDeterministic) {
  ProfiledRun run;
  EXPECT_EQ(run.report.complete_requests, 8);
  EXPECT_EQ(run.report.incomplete_requests, 0);
  EXPECT_EQ(run.report.requests.size(), 8u);
  for (std::size_t i = 1; i < run.report.requests.size(); ++i) {
    EXPECT_LT(run.report.requests[i - 1].app_id,
              run.report.requests[i].app_id);
  }
  std::ostringstream a, b;
  obs::prof::render(run.report, a);
  obs::prof::render(run.report, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("== strings profiler =="), std::string::npos);
  EXPECT_NE(a.str().find("jain_fairness_index:"), std::string::npos);
}

TEST(ProfReport, RegistryExportCarriesAttribution) {
  ProfiledRun run;
  obs::prof::export_to_registry(run.report, run.bed->metrics_registry());
  const std::string csv = run.bed->metrics_registry().to_csv();
  EXPECT_NE(csv.find("prof/fairness/jain"), std::string::npos);
  EXPECT_NE(csv.find("prof/tenant/pricing-svc/attained_s"),
            std::string::npos);
  EXPECT_NE(csv.find("prof/requests/complete"), std::string::npos);
}

// --- zero overhead: --prof must not perturb the run ----------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(ProfZeroOverhead, TraceIsByteIdenticalWithAndWithoutProf) {
  const std::string dir = ::testing::TempDir();
  auto cfg = workloads::parse_scenario(std::string(kTwoTenantScenario));

  workloads::RunArtifacts plain;
  plain.trace_path = dir + "/prof_zo_off.trace.json";
  const auto off = workloads::run_scenario_config_full(cfg, plain);

  workloads::RunArtifacts profiled;
  profiled.trace_path = dir + "/prof_zo_on.trace.json";
  profiled.prof_path = dir + "/prof_zo_on.prof.txt";
  const auto on = workloads::run_scenario_config_full(cfg, profiled);

  ASSERT_EQ(off.streams.size(), on.streams.size());
  for (std::size_t i = 0; i < off.streams.size(); ++i) {
    EXPECT_EQ(off.streams[i].makespan, on.streams[i].makespan);
    EXPECT_EQ(off.streams[i].total_response, on.streams[i].total_response);
  }
  const std::string trace_off = slurp(plain.trace_path);
  const std::string trace_on = slurp(profiled.trace_path);
  EXPECT_FALSE(trace_off.empty());
  EXPECT_EQ(trace_off, trace_on);  // the profiler is a pure observer
  const std::string prof = slurp(profiled.prof_path);
  EXPECT_NE(prof.find("== strings profiler =="), std::string::npos);
  EXPECT_EQ(on.prof_incomplete_requests, 0);
}

// --- interference forensics ----------------------------------------------

constexpr Bucket kWaitBuckets[] = {Bucket::kTransit, Bucket::kBackendQueue,
                                   Bucket::kDispatchWait};

TEST(ProfForensics, AttributionConservesWaitTimeExactly) {
  obs::prof::ProfRequest req = make_request();  // origin 0, gid 2, node 1
  req.issued_at = 0;
  req.completed_at = 40 * kMs;
  req.steps = {
      {ReqPhase::kIssue, 0},
      {ReqPhase::kTransit, 5 * kMs},        // transit: 5..10 (link.n0-n1)
      {ReqPhase::kBackendQueue, 10 * kMs},  // queue:  10..20 (node1.daemon)
      {ReqPhase::kBackendStart, 20 * kMs},
      {ReqPhase::kDispatchWait, 20 * kMs},  // gate:   20..30 (gpu2.engines)
      {ReqPhase::kExecute, 30 * kMs},
      {ReqPhase::kBackendDone, 40 * kMs},
      {ReqPhase::kComplete, 40 * kMs},
  };
  // Occupant timelines: the link was half-busy with batch traffic, the
  // daemon handled the victim's own earlier call then a batch call, and
  // the engines ran batch work over the first 6 ms of the gate wait.
  std::vector<obs::OccupantStamp> stamps = {
      {"link.n0-n1", "batch-train", 0, 7 * kMs},
      {"node1.daemon", "pricing-svc", 10 * kMs, 14 * kMs},
      {"node1.daemon", "batch-train", 14 * kMs, 20 * kMs},
      {"gpu2.engines", "batch-train", 18 * kMs, 26 * kMs},
  };
  const obs::prof::OccupantIndex occ = obs::prof::build_occupant_index(stamps);
  const obs::prof::RequestProfile p = obs::prof::profile_request(req, occ);

  const auto& transit = p.culprits[static_cast<int>(Bucket::kTransit)];
  EXPECT_EQ(transit.at("batch-train"), 2 * kMs);  // 5..7
  EXPECT_EQ(transit.at(obs::prof::kIdleCulprit), 3 * kMs);  // 7..10 uncovered

  const auto& queue = p.culprits[static_cast<int>(Bucket::kBackendQueue)];
  EXPECT_EQ(queue.at("pricing-svc"), 4 * kMs);  // self-interference kept
  EXPECT_EQ(queue.at("batch-train"), 6 * kMs);

  // dispatch_wait resolves against the ENGINES timeline (nothing occupies
  // the dispatcher itself — the gate is closed because the engines are
  // running someone's work).
  const auto& gate = p.culprits[static_cast<int>(Bucket::kDispatchWait)];
  EXPECT_EQ(gate.at("batch-train"), 6 * kMs);  // 20..26
  EXPECT_EQ(gate.at(obs::prof::kIdleCulprit), 4 * kMs);

  // Conservation: per-bucket culprit charges sum bit-for-bit to the
  // bucket, for every wait bucket.
  for (const Bucket b : kWaitBuckets) {
    sim::SimTime culprit_sum = 0;
    for (const auto& [who, ns] : p.culprits[static_cast<int>(b)]) {
      culprit_sum += ns;
    }
    EXPECT_EQ(culprit_sum, p.by_bucket[static_cast<int>(b)])
        << "bucket " << static_cast<int>(b);
  }
}

TEST(ProfForensics, NoTimelineAttributesEverythingToIdle) {
  obs::prof::ProfRequest req = make_request();
  req.issued_at = 0;
  req.completed_at = 10 * kMs;
  req.steps = {
      {ReqPhase::kIssue, 0},
      {ReqPhase::kTransit, 1 * kMs},
      {ReqPhase::kBackendQueue, 9 * kMs},
      {ReqPhase::kComplete, 10 * kMs},
  };
  const obs::prof::OccupantIndex occ =
      obs::prof::build_occupant_index({});  // empty flight recorder
  const obs::prof::RequestProfile p = obs::prof::profile_request(req, occ);
  const auto& transit = p.culprits[static_cast<int>(Bucket::kTransit)];
  EXPECT_EQ(transit.at(obs::prof::kIdleCulprit),
            p.by_bucket[static_cast<int>(Bucket::kTransit)]);
}

TEST(ProfForensics, LiveRunConservesAndAggregatesTheMatrix) {
  sim::Simulation sim;
  auto cfg = workloads::parse_scenario(std::string(kTwoTenantScenario));
  cfg.testbed.forensics = true;
  workloads::Testbed bed(sim, cfg.testbed);
  workloads::run_streams(bed, cfg.streams);
  const obs::prof::Report report =
      obs::prof::profile(obs::prof::input_from_tracer(*bed.tracer()));

  ASSERT_TRUE(report.forensics);
  EXPECT_FALSE(bed.tracer()->occupants().empty());
  EXPECT_EQ(bed.tracer()->occupants_dropped(), 0u);

  // The tentpole invariant: every blocked nanosecond lands on exactly one
  // culprit — per request, per wait bucket, bit for bit.
  sim::SimTime attributed_total = 0;
  for (const auto& p : report.requests) {
    for (const Bucket b : kWaitBuckets) {
      sim::SimTime culprit_sum = 0;
      for (const auto& [who, ns] : p.culprits[static_cast<int>(b)]) {
        culprit_sum += ns;
      }
      EXPECT_EQ(culprit_sum, p.by_bucket[static_cast<int>(b)]);
      attributed_total += culprit_sum;
    }
  }
  // ... and the victim x culprit matrix is exactly that attribution,
  // re-aggregated by tenant.
  sim::SimTime matrix_total = 0;
  for (const auto& [victim, row] : report.interference) {
    for (const auto& [culprit, ns] : row) matrix_total += ns;
  }
  EXPECT_EQ(matrix_total, attributed_total);
  EXPECT_FALSE(report.interference.empty());

  std::ostringstream os;
  obs::prof::render(report, os);
  EXPECT_NE(os.str().find("interference matrix"), std::string::npos);
}

TEST(ProfForensics, OffByDefaultLeavesReportAndTracerClean) {
  ProfiledRun run;  // trace on, forensics off
  EXPECT_FALSE(run.bed->tracer()->forensics_enabled());
  EXPECT_TRUE(run.bed->tracer()->occupants().empty());
  EXPECT_FALSE(run.report.forensics);
  EXPECT_TRUE(run.report.interference.empty());
  EXPECT_TRUE(run.report.exemplars.empty());
  for (const auto& p : run.report.requests) {
    for (const auto& m : p.culprits) EXPECT_TRUE(m.empty());
  }
  std::ostringstream os;
  obs::prof::render(run.report, os);
  EXPECT_EQ(os.str().find("interference matrix"), std::string::npos);
  EXPECT_EQ(os.str().find("tail exemplars"), std::string::npos);
}

TEST(ProfForensics, ExemplarIdsArePositional) {
  const std::vector<std::pair<sim::SimTime, std::uint64_t>> done = {
      {5 * kMs, 1}, {9 * kMs, 2}, {7 * kMs, 3}};
  const auto ids = obs::prof::exemplar_ids_for_window(done, 3, 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "w3.1");
  EXPECT_EQ(ids[1], "w3.2");
  EXPECT_TRUE(obs::prof::exemplar_ids_for_window({}, 3, 2).empty());
}

TEST(ProfForensics, ExemplarsAreRankedAndSerializedDeterministically) {
  sim::Simulation sim;
  auto cfg = workloads::parse_scenario(std::string(kTwoTenantScenario));
  cfg.testbed.stream = true;
  cfg.testbed.stream_window = sim::msec(20);
  cfg.testbed.exemplars = 2;
  workloads::Testbed bed(sim, cfg.testbed);
  workloads::run_streams(bed, cfg.streams);
  bed.finalize_stream();
  const obs::prof::Report report =
      obs::prof::profile(obs::prof::input_from_tracer(*bed.tracer()));

  ASSERT_TRUE(report.forensics);
  ASSERT_FALSE(report.exemplars.empty());
  for (std::size_t i = 0; i < report.exemplars.size(); ++i) {
    const auto& ex = report.exemplars[i];
    EXPECT_EQ(ex.id, "w" + std::to_string(ex.window) + "." +
                         std::to_string(ex.rank));
    EXPECT_GE(ex.rank, 1);
    EXPECT_LE(ex.rank, 2);
    // The exemplar belongs to the window its completion fell into.
    EXPECT_EQ(ex.req.completed_at / cfg.testbed.stream_window, ex.window);
    if (i > 0) {
      const auto& prev = report.exemplars[i - 1];
      // (window, rank) ascending; wall non-increasing within a window.
      EXPECT_TRUE(prev.window < ex.window ||
                  (prev.window == ex.window && prev.rank < ex.rank));
      if (prev.window == ex.window) {
        EXPECT_GE(prev.prof.wall, ex.prof.wall);
      }
    }
  }

  std::ostringstream a, b;
  obs::prof::write_exemplars_jsonl(report, a);
  obs::prof::write_exemplars_jsonl(report, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str().compare(0, 31, "{\"schema\":\"strings.exemplar.v1\""), 0);
}

TEST(ProfForensics, ForensicsIsAPureObserver) {
  const std::string dir = ::testing::TempDir();
  auto cfg = workloads::parse_scenario(std::string(kTwoTenantScenario));

  workloads::RunArtifacts plain;
  const auto off = workloads::run_scenario_config_full(cfg, plain);

  workloads::RunArtifacts forensic;
  forensic.stream_path = dir + "/forensics_observer.stream.jsonl";
  forensic.exemplar_k = 2;
  const auto on = workloads::run_scenario_config_full(cfg, forensic);

  ASSERT_EQ(off.streams.size(), on.streams.size());
  for (std::size_t i = 0; i < off.streams.size(); ++i) {
    EXPECT_EQ(off.streams[i].makespan, on.streams[i].makespan);
    EXPECT_EQ(off.streams[i].total_response, on.streams[i].total_response);
  }
  const std::string stream = slurp(forensic.stream_path);
  EXPECT_NE(stream.find("strings.stream.v1"), std::string::npos);
  const std::string sidecar = slurp(forensic.stream_path + ".exemplars.jsonl");
  // Every sidecar line reappears verbatim at the tail of the stream file.
  EXPECT_NE(stream.find(sidecar), std::string::npos);
}

// --- the RequestTrace ordering contract (pipelined non-blocking RPC) -----

bool frontend_side(ReqPhase p) {
  return p == ReqPhase::kIssue || p == ReqPhase::kBind ||
         p == ReqPhase::kMarshal || p == ReqPhase::kTransit ||
         p == ReqPhase::kComplete;
}

// With the non-blocking RPC path, the frontend keeps stamping marshal /
// transit steps for later calls while the backend is still working through
// earlier ones, so the merged step list is NOT globally monotone — which
// is exactly why the profiler sweeps intervals instead of walking a single
// state machine. What DOES hold, and what this test pins:
//   - frontend-side stamps are monotone in append order (stamped live);
//   - backend-side stamps are monotone too, except kBackendQueue, which
//     the worker back-dates to the packet's delivery time when it finally
//     picks it up — those form their own monotone FIFO subsequence;
//   - FIFO channels mean sends precede their (order-preserved) deliveries.
TEST(RequestTraceOrdering, TimestampsMonotonePerSideUnderPipelining) {
  ProfiledRun run;
  int interleaved_requests = 0;
  for (const auto& [app_id, r] : run.bed->tracer()->requests()) {
    SCOPED_TRACE("app_id=" + std::to_string(app_id));
    sim::SimTime last_frontend = -1, last_backend = -1;
    std::vector<sim::SimTime> transits, deliveries;
    bool saw_backend = false, interleaved = false;
    for (const RequestTrace::Step& s : r.steps) {
      if (frontend_side(s.phase)) {
        EXPECT_GE(s.at, last_frontend) << "frontend side went backwards";
        last_frontend = s.at;
        if (saw_backend && s.phase != ReqPhase::kComplete) {
          interleaved = true;  // a frontend stamp after backend activity
        }
        if (s.phase == ReqPhase::kTransit) transits.push_back(s.at);
      } else if (s.phase == ReqPhase::kBackendQueue) {
        // Back-dated to delivery time; monotone among themselves (FIFO).
        EXPECT_TRUE(deliveries.empty() || s.at >= deliveries.back())
            << "deliveries went backwards";
        deliveries.push_back(s.at);
        saw_backend = true;
      } else {
        EXPECT_GE(s.at, last_backend) << "backend side went backwards";
        last_backend = s.at;
        saw_backend = true;
      }
    }
    // FIFO channel causality. Blocking calls stamp a delivery without a
    // transit, so deliveries can outnumber transits and the i-th transit
    // need not pair with the i-th delivery. But each of the last
    // (n - i) transits is delivered at or after transits[i], and
    // deliveries are ascending — so at least (n - i) deliveries sit at
    // >= transits[i]:
    ASSERT_LE(transits.size(), deliveries.size());
    const std::size_t shift = deliveries.size() - transits.size();
    for (std::size_t i = 0; i < transits.size(); ++i) {
      EXPECT_LE(transits[i], deliveries[i + shift]) << "call " << i;
    }
    if (interleaved) ++interleaved_requests;
  }
  // The contract above must hold for every request; pipelining must also
  // actually happen somewhere, or this test pins nothing.
  EXPECT_GT(interleaved_requests, 0);
}

}  // namespace
}  // namespace strings
