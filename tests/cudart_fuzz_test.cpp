// Fuzz-style property test of the simulated CUDA runtime: random sequences
// of API calls from multiple host processes must never corrupt accounting —
// memory balances, all work drains, no crashes or stuck streams.
#include <gtest/gtest.h>

#include <random>

#include "cudart/cuda_runtime.hpp"
#include "gpu/device_props.hpp"
#include "simcore/simulation.hpp"

namespace strings::cuda {
namespace {

using sim::msec;
using E = cudaError_t;

class CudartFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CudartFuzz, RandomApiSequencesKeepInvariants) {
  sim::Simulation sim;
  auto props = gpu::tesla_c2050();
  props.ctx_switch = sim::usec(100);
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  devices.push_back(std::make_unique<gpu::GpuDevice>(sim, 0, props));
  devices.push_back(std::make_unique<gpu::GpuDevice>(sim, 1, props));
  CudaRuntime rt(sim, {devices[0].get(), devices[1].get()});

  constexpr int kProcs = 3;
  constexpr int kOpsPerProc = 40;
  int finished = 0;

  for (int pi = 0; pi < kProcs; ++pi) {
    sim.spawn("proc" + std::to_string(pi), [&, pi] {
      std::mt19937 rng(GetParam() * 100 + static_cast<unsigned>(pi));
      const ProcessId pid = rt.create_process();
      std::vector<DevPtr> ptrs;
      std::vector<cudaStream_t> streams;
      std::vector<cudaEvent_t> events;

      for (int op = 0; op < kOpsPerProc; ++op) {
        switch (rng() % 10) {
          case 0: {  // set device
            EXPECT_EQ(rt.cudaSetDevice(pid, static_cast<int>(rng() % 2)),
                      E::cudaSuccess);
            break;
          }
          case 1: {  // malloc
            DevPtr p = 0;
            if (rt.cudaMalloc(pid, &p, 1 + rng() % (1 << 20)) ==
                E::cudaSuccess) {
              ptrs.push_back(p);
            }
            break;
          }
          case 2: {  // free
            if (!ptrs.empty()) {
              const std::size_t i = rng() % ptrs.size();
              // May fail if the pointer belongs to the other device's
              // context — the error itself must be clean.
              rt.cudaFree(pid, ptrs[i]);
              ptrs.erase(ptrs.begin() + static_cast<std::ptrdiff_t>(i));
            }
            break;
          }
          case 3: {  // stream create
            cudaStream_t s = 0;
            EXPECT_EQ(rt.cudaStreamCreate(pid, &s), E::cudaSuccess);
            streams.push_back(s);
            break;
          }
          case 4: {  // launch on random stream (maybe default)
            const cudaStream_t s =
                streams.empty() || rng() % 3 == 0
                    ? cudaStreamDefault
                    : streams[rng() % streams.size()];
            KernelLaunch kl{"fuzz",
                            gpu::KernelDesc{sim::usec(100 + rng() % 5000),
                                            0.1 + 0.1 * (rng() % 9), 5.0}};
            rt.cudaLaunchKernel(pid, kl, s);
            break;
          }
          case 5: {  // memcpy async
            if (!ptrs.empty()) {
              const cudaStream_t s =
                  streams.empty() ? cudaStreamDefault
                                  : streams[rng() % streams.size()];
              rt.cudaMemcpyAsync(pid, ptrs[rng() % ptrs.size()], 64,
                                 rng() % 2 == 0
                                     ? cudaMemcpyKind::cudaMemcpyHostToDevice
                                     : cudaMemcpyKind::cudaMemcpyDeviceToHost,
                                 s, rng() % 2 == 0);
            }
            break;
          }
          case 6: {  // stream synchronize
            const cudaStream_t s =
                streams.empty() ? cudaStreamDefault
                                : streams[rng() % streams.size()];
            rt.cudaStreamSynchronize(pid, s);
            break;
          }
          case 7: {  // device synchronize
            rt.cudaDeviceSynchronize(pid);
            break;
          }
          case 8: {  // event record + maybe sync
            cudaEvent_t ev = 0;
            EXPECT_EQ(rt.cudaEventCreate(pid, &ev), E::cudaSuccess);
            const cudaStream_t s =
                streams.empty() ? cudaStreamDefault
                                : streams[rng() % streams.size()];
            rt.cudaEventRecord(pid, ev, s);
            if (rng() % 2 == 0) rt.cudaEventSynchronize(pid, ev);
            events.push_back(ev);
            break;
          }
          case 9: {  // small host pause
            sim.wait_for(sim::usec(rng() % 2000));
            break;
          }
        }
      }
      rt.destroy_process(pid);
      ++finished;
    });
  }
  sim.run();

  EXPECT_EQ(finished, kProcs);
  // All device memory reclaimed, all work drained.
  for (const auto& dev : devices) {
    EXPECT_EQ(dev->memory_used(), 0u);
    EXPECT_EQ(dev->ops_in_flight(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CudartFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace strings::cuda
