// DL002 positive: ambient randomness.
#include <cstdlib>
#include <random>
int roll() {
  std::random_device rd;
  return rand() % 6 + static_cast<int>(rd() % 6);
}
