// DL012 positive: a NOLINT that suppresses nothing — std::map is not a
// DL003 finding, so the marker is dead weight and must be removed.
#include <map>
struct Table {
  std::map<int, int> rows;  // NOLINT(DL003 thought this was unordered)
};
