// DL009 negative: the doctrine-approved shapes. Take the value out
// BEFORE mutating, and re-seat iterators through the erase() return.
#include "simcore/flat_map.hpp"
struct RcbEntry {
  int app_type;
};
struct Scheduler {
  sim::FlatMap<int, RcbEntry> rcb_;
  int unregister_app(int signal_id) {
    auto it = rcb_.find(signal_id);
    RcbEntry copy = it->second;  // value copied out first
    rcb_.erase(it);
    return copy.app_type;
  }
  int sweep() {
    int dropped = 0;
    auto it = rcb_.begin();
    while (it != rcb_.end()) {
      it = rcb_.erase(it);  // re-seat: the binding is valid again
      ++dropped;
      if (it != rcb_.end()) dropped += it->second.app_type;
    }
    return dropped;
  }
};
