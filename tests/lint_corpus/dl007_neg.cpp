// DL007 negative: same include, but this file is NOT under a src/ path
// component — bench/ and tools/ style code may touch wall-clock headers.
#include <chrono>
using Tick = std::chrono::milliseconds;
