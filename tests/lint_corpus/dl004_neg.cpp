// DL004 negative: pointer *values* are fine — only pointer keys iterate
// in address order.
#include <map>
#include <string>
struct Obj {};
struct Registry {
  std::map<std::string, Obj*> by_name;
  std::map<int, int> plain;
};
