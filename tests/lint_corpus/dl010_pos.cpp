// DL010 positive: a by-value capture of a ~96-byte struct in a schedule
// closure. SmallFn inlines at most 80 bytes, so this closure would
// heap-allocate on the event hot path.
#include <string>
struct Sim;
struct Blob {
  std::string a;
  std::string b;
  std::string c;
};
void sink(const Blob& blob);
void enqueue(Sim& sim) {
  Blob blob;
  sim.schedule(5, [blob] { sink(blob); });
}
