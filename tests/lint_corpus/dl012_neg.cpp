// DL012 negative: the NOLINT on the line above a real DL003 finding is
// used, so neither DL003 nor DL012 is reported — the file is clean.
#include <unordered_map>
struct Table {
  // NOLINT(DL003 scratch cache; contents are re-sorted before any output)
  std::unordered_map<int, int> cache;
};
