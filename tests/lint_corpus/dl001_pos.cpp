// DL001 positive: wall-clock reads in real code tokens.
#include <chrono>
long wall() {
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count() + time(nullptr);
}
