// DL003 negative: "unordered_map" appears only in comments and strings.
// An std::unordered_map<K, V> here would be a finding; std::map is fine.
#include <map>
#include <string>
struct Index {
  std::map<std::string, int> by_name;
  const char* why = "unordered_map iteration order is not reproducible";
};
