// DL004 positive: pointer-keyed ordered containers (address order).
#include <map>
#include <set>
struct Obj {};
struct Registry {
  std::map<const Obj*, int> by_addr;
  std::set<Obj*> live;
};
