// DL001 negative: clock names in comments and strings are not code.
// std::chrono::steady_clock::now() would be a finding if it were code.
/* so would high_resolution_clock or gettimeofday(&tv, nullptr) */
static const char* kDoc = "system_clock, steady_clock, time(nullptr)";
bool dl001_neg() { return kDoc != nullptr; }
