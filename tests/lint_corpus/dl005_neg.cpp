// DL005 negative: __DATE__ and __TIME__ only inside a string literal.
const char* doc() { return "__DATE__ / __TIME__ are banned in code"; }
