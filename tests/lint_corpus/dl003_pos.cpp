// DL003 positive: hash-ordered container in code.
#include <string>
#include <unordered_map>
struct Index {
  std::unordered_map<std::string, int> by_name;
};
