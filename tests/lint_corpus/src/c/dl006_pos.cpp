// DL006 positive: layer c has no `allow c -> b` edge in the corpus
// layering.rules, so this include is a layering violation.
#include "b/widget.hpp"
int area() { return b::Widget{}.id; }
