// Corpus stub: include target for the DL006 fixtures.
#pragma once
namespace b {
struct Widget {
  int id = 0;
};
}  // namespace b
