// DL008 negative: the same observer posts a weak event instead —
// schedule_weak never extends a run, so this is the sanctioned form.
struct Sim;
void arm(Sim& sim) {
  sim.schedule_weak(5, [] {});
}
