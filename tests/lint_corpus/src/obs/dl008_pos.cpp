// DL008 positive: observer code (src/obs) posting a strong event.
// Observers must never extend a run; schedule() keeps the simulation
// alive until the event fires.
struct Sim;
void on_sample(Sim& sim);
void arm(Sim& sim) {
  sim.schedule(5, [] {});
}
