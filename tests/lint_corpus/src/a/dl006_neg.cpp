// DL006 negative: the corpus layering.rules declares `allow a -> b`,
// so this cross-layer include is fine (and marks the edge as used).
#include "b/widget.hpp"
int volume() { return b::Widget{}.id * 2; }
