// Corpus stub: the header that src/x/dl011_pos.cpp fails to include first.
#pragma once
int answer();
