// DL011 negative: self-include first, and the modeled FlatMap symbol is
// backed by a DIRECT include of its defining header.
#include "x/dl011_neg.hpp"
#include "simcore/flat_map.hpp"
int census() {
  sim::FlatMap<int, int> counts;
  return static_cast<int>(counts.size());
}
