// DL011 positive: a .cpp with its own header on disk must include that
// header FIRST (so the header is proven self-contained) — this one
// includes <vector> first.
#include <vector>
#include "x/dl011_pos.hpp"
int answer() { return static_cast<int>(std::vector<int>{42}.front()); }
