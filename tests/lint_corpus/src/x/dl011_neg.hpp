// Corpus stub: the self-include target for src/x/dl011_neg.cpp.
#pragma once
int census();
