// DL007 positive: a wall-clock header under a src/ subtree. Wall time may
// only enter through the bench-side --stream-wall injection seam.
#include <chrono>
using Tick = std::chrono::milliseconds;
