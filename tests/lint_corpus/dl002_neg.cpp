// DL002 negative: a seeded engine owned by the caller; the words rand()
// and random_device appear only in comment/string context.
#include <random>
int roll(unsigned seed) {
  std::mt19937 rng(seed);
  static const char* kWhy = "rand() and random_device are banned";
  return static_cast<int>(rng() % 6) + (kWhy != nullptr ? 0 : 1);
}
