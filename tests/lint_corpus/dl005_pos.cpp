// DL005 positive: bake-time stamps.
const char* built_on() { return __DATE__ " " __TIME__; }
