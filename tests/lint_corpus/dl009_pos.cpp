// DL009 positive: the GpuScheduler::unregister_app bug class from PR 6 —
// a reference into a sim::FlatMap stays live across erase() of the same
// map. Flat storage moves on mutation, so `e` dangles at the return.
#include "simcore/flat_map.hpp"
struct RcbEntry {
  int app_type;
};
struct Scheduler {
  sim::FlatMap<int, RcbEntry> rcb_;
  int unregister_app(int signal_id) {
    auto it = rcb_.find(signal_id);
    const RcbEntry& e = it->second;
    rcb_.erase(it);
    return e.app_type;
  }
};
