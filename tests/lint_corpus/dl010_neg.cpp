// DL010 negative: two word-sized captures (16 bytes) fit the SmallFn
// 80-byte inline budget comfortably.
struct Sim;
void use(int id, bool flag);
void enqueue(Sim& sim) {
  int id = 7;
  bool flag = true;
  sim.schedule(5, [id, flag] { use(id, flag); });
}
