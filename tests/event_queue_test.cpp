// Determinism pins for the calendar-queue scheduler and the intrusive
// Event wait cells.
//
// The calendar queue replaced the seed's std::priority_queue<QueuedEvent>;
// its contract is that events pop in exactly the same (time, seq) total
// order the heap gave. A reference heap lives here (and only here) so
// randomized schedules can be checked op-for-op against it — if the two
// ever disagree, the simulator's bit-reproducibility is gone even when no
// unit test of the kernel notices.
#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "simcore/simulation.hpp"

namespace strings::sim {
namespace {

/// The seed kernel's ordering, verbatim: a binary min-heap on (time, seq).
/// Payload is the (time, seq, weak) triple — the CalendarQueue's SmallFn
/// is irrelevant to ordering, so the reference carries none.
struct RefKey {
  SimTime time;
  std::uint64_t seq;
  bool weak;
  bool operator>(const RefKey& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};
using RefHeap =
    std::priority_queue<RefKey, std::vector<RefKey>, std::greater<RefKey>>;

void push_both(CalendarQueue& q, RefHeap& ref, SimTime time, std::uint64_t seq,
               bool weak = false) {
  q.push(time, seq, [] {}, weak);
  ref.push(RefKey{time, seq, weak});
}

/// Pops one event from each and asserts the full key matches.
void pop_and_compare(CalendarQueue& q, RefHeap& ref) {
  ASSERT_FALSE(q.empty());
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(q.min_time(), ref.top().time);
  const EventRecord got = q.pop();
  const RefKey want = ref.top();
  ref.pop();
  ASSERT_EQ(got.time, want.time);
  ASSERT_EQ(got.seq, want.seq);
  ASSERT_EQ(got.weak, want.weak);
}

TEST(CalendarQueue, FifoTieBreakWithinEqualTimestamps) {
  CalendarQueue q;
  RefHeap ref;
  // A same-timestamp burst: FIFO order must fall out of seq alone.
  std::uint64_t seq = 0;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 50; ++i) push_both(q, ref, usec(10) * burst, seq++);
  }
  while (!q.empty()) pop_and_compare(q, ref);
  EXPECT_TRUE(ref.empty());
}

TEST(CalendarQueue, RandomizedSchedulesMatchReferenceHeap) {
  // Several deterministic seeds x several time distributions. Pushes are
  // interleaved with pops (never below the popped floor, as in the real
  // kernel where schedule() uses now() + delay).
  for (std::uint32_t seed : {1u, 7u, 1234u, 987654u}) {
    std::mt19937 rng(seed);
    CalendarQueue q;
    RefHeap ref;
    SimTime floor = 0;
    std::uint64_t seq = 0;
    std::uniform_int_distribution<int> op(0, 9);
    // Gap distributions: dense ties, microsecond steady state, and
    // second-scale outliers (the startup-burst shape that forces retunes).
    std::uniform_int_distribution<SimTime> dense(0, 3);
    std::uniform_int_distribution<SimTime> steady(1, usec(5));
    std::uniform_int_distribution<SimTime> sparse(msec(1), SimTime{2} * sec(1));
    for (int step = 0; step < 20000; ++step) {
      if (op(rng) < 6 || q.empty()) {
        const int mode = op(rng);
        const SimTime gap = mode < 5   ? dense(rng)
                            : mode < 9 ? steady(rng)
                                       : sparse(rng);
        push_both(q, ref, floor + gap, seq++, /*weak=*/(seq % 7) == 0);
      } else {
        EXPECT_EQ(ref.top().time, q.min_time());
        floor = ref.top().time;
        pop_and_compare(q, ref);
      }
      ASSERT_EQ(q.size(), ref.size());
    }
    while (!q.empty()) pop_and_compare(q, ref);
  }
}

TEST(CalendarQueue, SurvivesHorizonShift) {
  // Width tuned by a seconds-wide startup burst, then a microsecond-dense
  // steady state lands in one fat bucket: the retune path must fire and the
  // order must stay exact.
  CalendarQueue q;
  RefHeap ref;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) push_both(q, ref, sec(1) * i, seq++);
  for (int i = 0; i < 64; ++i) pop_and_compare(q, ref);
  const SimTime base = sec(63);
  for (int i = 0; i < 512; ++i) push_both(q, ref, base + i % 17, seq++);
  while (!q.empty()) pop_and_compare(q, ref);
}

TEST(Simulation, SameTimestampCallbacksRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    sim.schedule(usec(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  std::vector<int> want(32);
  for (int i = 0; i < 32; ++i) want[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, want);
}

TEST(Simulation, WeakEventsDoNotKeepRunAlive) {
  Simulation sim;
  std::vector<int> ran;
  sim.schedule_weak(usec(5), [&] { ran.push_back(5); });   // before the work
  sim.schedule(usec(10), [&] { ran.push_back(10); });      // the real work
  sim.schedule_weak(usec(20), [&] { ran.push_back(20); }); // past the drain
  sim.run();
  EXPECT_EQ(ran, (std::vector<int>{5, 10}));
  EXPECT_EQ(sim.now(), usec(10));
}

TEST(Simulation, RunUntilBoundaryIsInclusive) {
  Simulation sim;
  std::vector<int> ran;
  sim.schedule(usec(10), [&] { ran.push_back(10); });
  sim.schedule(usec(20), [&] { ran.push_back(20); });
  // Events with timestamp == t run; now() lands exactly on t; the return
  // value reports whether non-weak work remains beyond t.
  EXPECT_TRUE(sim.run_until(usec(10)));
  EXPECT_EQ(ran, (std::vector<int>{10}));
  EXPECT_EQ(sim.now(), usec(10));
  EXPECT_FALSE(sim.run_until(usec(20)));
  EXPECT_EQ(ran, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), usec(20));
  // Advancing over an empty queue still moves the clock.
  EXPECT_FALSE(sim.run_until(usec(30)));
  EXPECT_EQ(sim.now(), usec(30));
}

// The intrusive wait cells replaced shared_ptr<WaitCell> tombstones:
// waiter_count() must now be exact at every instant (timed-out waiters are
// erased eagerly), notify_one must stay FIFO, and kills/timeouts must not
// leave dangling entries. Randomized rounds shake all three paths together.
TEST(Event, WaiterCountStress) {
  for (std::uint32_t seed : {3u, 42u, 20260808u}) {
    std::mt19937 rng(seed);
    Simulation sim;
    Event ev(sim);
    int woken = 0, timed_out = 0, alive = 0;
    std::vector<int> wake_order;
    constexpr int kWaiters = 64;
    for (int i = 0; i < kWaiters; ++i) {
      const SimTime timeout =
          (rng() % 3 == 0) ? usec(50 + static_cast<SimTime>(rng() % 200))
                           : kNever;
      sim.spawn("waiter" + std::to_string(i), [&, i, timeout] {
        ++alive;
        if (ev.wait_for(timeout)) {
          ++woken;
          wake_order.push_back(i);
        } else {
          ++timed_out;
        }
        --alive;
      });
    }
    sim.spawn("notifier", [&] {
      sim.wait_for(usec(10));
      // All waiters are parked by now; the count must be exact.
      EXPECT_EQ(ev.waiter_count(), kWaiters);
      std::uniform_int_distribution<SimTime> gap(1, usec(40));
      while (ev.waiter_count() > 0) {
        sim.wait_for(gap(rng));
        const int before = ev.waiter_count();
        if (rng() % 4 == 0) {
          ev.notify_all();
          EXPECT_EQ(ev.waiter_count(), 0);
        } else {
          ev.notify_one();
          EXPECT_EQ(ev.waiter_count(), before - 1);
        }
      }
    });
    sim.run();
    EXPECT_EQ(woken + timed_out, kWaiters);
    EXPECT_EQ(alive, 0);
    EXPECT_EQ(ev.waiter_count(), 0);
    // FIFO: of the waiters woken by notify, spawn order is wake order
    // (timed-out waiters drop out but never reorder the survivors).
    EXPECT_TRUE(std::is_sorted(wake_order.begin(), wake_order.end()));
  }
}

TEST(Event, NotifyOneSkipsNothingAfterTimeouts) {
  Simulation sim;
  Event ev(sim);
  std::vector<int> wake_order;
  // Odd waiters time out at 10us; notify starts at 20us. The eager erase
  // must leave the even waiters contiguous and in FIFO order.
  for (int i = 0; i < 10; ++i) {
    sim.spawn("w" + std::to_string(i), [&, i] {
      const bool notified = ev.wait_for(i % 2 == 1 ? usec(10) : kNever);
      EXPECT_EQ(notified, i % 2 == 0);
      if (notified) wake_order.push_back(i);
    });
  }
  sim.spawn("notifier", [&] {
    sim.wait_for(usec(20));
    EXPECT_EQ(ev.waiter_count(), 5);
    while (ev.waiter_count() > 0) {
      ev.notify_one();
      sim.wait_for(usec(1));
    }
  });
  sim.run();
  EXPECT_EQ(wake_order, (std::vector<int>{0, 2, 4, 6, 8}));
}

}  // namespace
}  // namespace strings::sim
