// The streaming layer's zero-overhead contract, pinned in-process:
//
//   1. with --stream off, a run is byte-for-byte identical (trace JSON and
//      metrics CSV) to one built before the telemetry layer existed — no
//      extra instruments, no weak ticks, no perturbation;
//   2. with --stream on, the virtual timeline is still unperturbed: the
//      per-request stats match the stream-off run exactly (sampling rides
//      on schedule_weak and the TimeSeries only reads the registry);
//   3. the streamed .jsonl itself is byte-identical across repeated runs —
//      no wall clock, no randomness anywhere in the pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "workloads/scenario_config.hpp"

namespace strings {
namespace {

const char kScenario[] = R"(
mode = strings
topology = supernode
balancing = GMin
device_policy = PS
stream_window_ms = 50

[stream]
app = BS
origin = 0
requests = 5
lambda_scale = 0.3
server_threads = 2
tenant = pricing-svc

[stream]
app = MM
origin = 1
requests = 3
lambda_scale = 0.4
server_threads = 2
tenant = batch-train
)";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

void expect_identical_streams(const std::vector<workloads::StreamStats>& a,
                              const std::vector<workloads::StreamStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].errors, b[i].errors);
    EXPECT_EQ(a[i].makespan, b[i].makespan);
    ASSERT_EQ(a[i].response_times.size(), b[i].response_times.size());
    for (std::size_t j = 0; j < a[i].response_times.size(); ++j) {
      EXPECT_EQ(a[i].response_times[j], b[i].response_times[j])
          << "stream " << i << " request " << j;
    }
  }
}

// Contract 1: stream off == never built. The exported trace and metrics
// must not mention a single telemetry artifact, and two off-runs agree
// byte for byte (golden_artifacts_* pins the same against committed files).
TEST(StreamZeroOverhead, OffRunHasNoTelemetryFootprint) {
  const std::string dir = ::testing::TempDir();
  auto run = [&](const std::string& tag) {
    auto cfg = workloads::parse_scenario(std::string(kScenario));
    cfg.testbed.stream = false;
    workloads::RunArtifacts art;
    art.trace_path = dir + "/szo_" + tag + ".trace.json";
    art.metrics_path = dir + "/szo_" + tag + ".metrics.csv";
    workloads::run_scenario_config_full(cfg, art);
    return std::make_pair(slurp(art.trace_path), slurp(art.metrics_path));
  };
  const auto a = run("a");
  const auto b = run("b");
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_FALSE(a.second.empty());
  // No sim/ self-instrumentation, no tenant/ request metrics, no slo/
  // counters: the off run never registers them.
  EXPECT_EQ(a.second.find("sim/"), std::string::npos);
  EXPECT_EQ(a.second.find("tenant/"), std::string::npos);
  EXPECT_EQ(a.second.find("slo/"), std::string::npos);
}

// Contract 2: stream on leaves the virtual timeline untouched.
TEST(StreamZeroOverhead, StreamOnDoesNotPerturbTimeline) {
  auto run = [&](bool stream) {
    auto cfg = workloads::parse_scenario(std::string(kScenario));
    cfg.testbed.stream = stream;
    return workloads::run_scenario_config(cfg);
  };
  expect_identical_streams(run(false), run(true));
}

// Contract 3: the .jsonl artifact is byte-reproducible, and sampling on
// schedule_weak never extends the run — the last window end cannot pass
// the drain time observed by the stream-off run.
TEST(StreamZeroOverhead, StreamFileIsByteIdenticalAcrossRuns) {
  const std::string dir = ::testing::TempDir();
  auto run = [&](const std::string& tag) {
    auto cfg = workloads::parse_scenario(std::string(kScenario));
    workloads::RunArtifacts art;
    art.stream_path = dir + "/szo_stream_" + tag + ".jsonl";
    workloads::run_scenario_config_full(cfg, art);
    return slurp(art.stream_path);
  };
  const std::string a = run("a");
  EXPECT_EQ(a, run("b"));
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("\"schema\":\"strings.stream.v1\""), std::string::npos);
  // Self-instrumentation rides in the stream.
  EXPECT_NE(a.find("sim/events_executed"), std::string::npos);
  EXPECT_NE(a.find("tenant/pricing-svc/completed"), std::string::npos);
}

}  // namespace
}  // namespace strings
