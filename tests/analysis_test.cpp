// Tests for the protocol analysis layer: negative paths (injected protocol
// violations must be detected, with the right invariant id and access
// site), happens-before race detection on synthetic schedules, and the
// clean-run contract (a correct end-to-end scenario reports zero invariant
// violations).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "core/gpu_scheduler.hpp"
#include "core/mapper_agent.hpp"
#include "core/placement_service.hpp"
#include "policies/device_policies.hpp"
#include "workloads/scenario_config.hpp"

namespace strings {
namespace {

analysis::Site here() { return analysis::Site{"analysis_test.cpp", 0}; }

// ---- invariant registry, driven through the real components -------------

class AnalysisInvariants : public ::testing::Test {
 protected:
  void SetUp() override { analyzer.install(sim); }
  sim::Simulation sim;
  analysis::Analyzer analyzer;
};

TEST_F(AnalysisInvariants, DuplicateAckViolatesRcbLifecycle) {
  core::GpuScheduler sched(sim, /*gid=*/0,
                           policies::make_device_policy("AllAwake"));
  core::WakeGate gate(sim);
  core::GpuScheduler::RcbInit init;
  init.app_type = "MC";
  init.tenant = "t0";
  init.gate = &gate;
  const int id = sched.register_app(init);
  sched.ack(id);
  EXPECT_FALSE(analyzer.report().has("INV-RCB-1"));
  sched.ack(id);  // handshake step 3 replayed
  EXPECT_TRUE(analyzer.report().has("INV-RCB-1", "gpu_scheduler.cpp"));
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

TEST_F(AnalysisInvariants, UnregisterBeforeAckViolatesRcbLifecycle) {
  core::GpuScheduler sched(sim, /*gid=*/1,
                           policies::make_device_policy("AllAwake"));
  core::WakeGate gate(sim);
  core::GpuScheduler::RcbInit init;
  init.app_type = "BS";
  init.tenant = "t1";
  init.gate = &gate;
  const int id = sched.register_app(init);
  sched.unregister_app(id);  // never acked
  EXPECT_TRUE(analyzer.report().has("INV-RCB-1", "gpu_scheduler.cpp"));
}

TEST_F(AnalysisInvariants, DispatchBeforeAckViolatesHandshake) {
  core::GpuScheduler sched(sim, /*gid=*/2,
                           policies::make_device_policy("AllAwake"));
  core::WakeGate gate(sim);
  core::GpuScheduler::RcbInit init;
  init.app_type = "DC";
  init.tenant = "t2";
  init.gate = &gate;
  const int id = sched.register_app(init);
  sched.notify_dispatch(id);  // out-of-order: gate cleared before step 3
  EXPECT_TRUE(analyzer.report().has("INV-HSK-1", "gpu_scheduler.cpp"));
  sched.ack(id);
  sched.notify_dispatch(id);  // now legal
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

TEST_F(AnalysisInvariants, StaleSnapshotInstallViolatesVersionBound) {
  core::PlacementService::Config cfg;
  cfg.static_policy = "GMin";
  core::PlacementService svc(cfg);
  svc.report_node(0, {gpu::quadro2000(), gpu::tesla_c2050()});
  svc.finalize();
  core::ControlPlaneConfig cp;
  cp.placement = core::PlacementMode::kDistributed;
  cp.transport = core::ControlTransport::kDirect;
  core::MapperAgent agent(sim, 0, svc, cp, nullptr);

  // A snapshot from the future: version beyond the authoritative one.
  core::DstSnapshot future;
  future.version = svc.version() + 7;
  agent.debug_install_snapshot(future);
  EXPECT_TRUE(analyzer.report().has("INV-DST-1", "mapper_agent.cpp"));
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);

  // Advance the service past the cached version, then regress the agent.
  while (svc.version() < future.version) svc.select_device("MC", 0);
  core::DstSnapshot regressed;
  regressed.version = future.version - 3;
  agent.debug_install_snapshot(regressed);  // legal bound, broken monotonic
  EXPECT_TRUE(analyzer.report().has("INV-DST-2", "mapper_agent.cpp"));
  EXPECT_EQ(analyzer.report().invariant_violations(), 2);
}

TEST_F(AnalysisInvariants, ReorderedStreamOpViolatesSstOrder) {
  // The packer's public API cannot reorder a correct program, so the
  // injection goes straight at the checker's indexed seam.
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.stream_op_indexed(3, 1, /*app=*/9, /*op_index=*/1, here(), 0);
  inv.stream_op_indexed(3, 1, /*app=*/9, /*op_index=*/2, here(), 0);
  EXPECT_FALSE(analyzer.report().has("INV-SST-1"));
  inv.stream_op_indexed(3, 1, /*app=*/9, /*op_index=*/2, here(), 0);
  EXPECT_TRUE(analyzer.report().has("INV-SST-1", "analysis_test.cpp"));
}

TEST_F(AnalysisInvariants, ForeignAppOnPrivateStreamViolatesOwnership) {
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.stream_op_indexed(3, 1, /*app=*/9, /*op_index=*/1, here(), 0);
  inv.stream_op_indexed(3, 1, /*app=*/10, /*op_index=*/1, here(), 0);
  EXPECT_TRUE(analyzer.report().has("INV-SST-2"));
  // Destruction releases ownership: a recycled handle re-owns cleanly.
  inv.stream_destroyed(3, 1);
  inv.stream_op_indexed(3, 1, /*app=*/11, /*op_index=*/1, here(), 0);
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

TEST_F(AnalysisInvariants, GrrSpreadBeyondDeciderCountViolatesBound) {
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.set_grr_deciders(1);
  inv.grr_bind({3, 4, 3, 4}, here(), 0);  // spread 1: legal
  EXPECT_FALSE(analyzer.report().has("INV-GRR-1"));
  inv.grr_bind({3, 6, 3, 4}, here(), 0);  // spread 3 > 1 decider
  EXPECT_TRUE(analyzer.report().has("INV-GRR-1", "analysis_test.cpp"));
  inv.set_grr_deciders(4);
  inv.grr_bind({3, 6, 3, 4}, here(), 0);  // same spread, now within bound
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

TEST_F(AnalysisInvariants, DeltaAppliedOverAGapViolatesContiguity) {
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.delta_apply(1, /*cached=*/5, /*base=*/5, /*new=*/6, here(), 0);
  EXPECT_FALSE(analyzer.report().has("INV-DST-3"));
  // Cache at v6, delta starts at v8: versions 6..8 were never applied.
  inv.delta_apply(1, 6, 8, 9, here(), 0);
  EXPECT_TRUE(analyzer.report().has("INV-DST-3", "analysis_test.cpp"));
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

TEST_F(AnalysisInvariants, NonAdvancingDeltaViolatesContiguity) {
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.delta_apply(0, /*cached=*/4, /*base=*/3, /*new=*/4, here(), 0);
  EXPECT_TRUE(analyzer.report().has("INV-DST-3"));
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

TEST_F(AnalysisInvariants, LegalDeltaApplyFeedsTheMonotonicVersionHistory) {
  // A delta-driven advance must register with INV-DST-2: installing a full
  // snapshot *below* the delta's new version afterwards is a regression.
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.delta_apply(2, /*cached=*/5, /*base=*/5, /*new=*/9, here(), 0);
  EXPECT_EQ(analyzer.report().invariant_violations(), 0);
  inv.snapshot_install(2, /*version=*/7, /*authoritative=*/20, here(), 0);
  EXPECT_TRUE(analyzer.report().has("INV-DST-2"));
}

TEST_F(AnalysisInvariants, StripedGrrBoundsEachResidueClassSeparately) {
  analysis::InvariantChecker& inv = analyzer.invariants();
  inv.set_grr_deciders(2);
  inv.set_grr_striped(true);
  // 4 gids, 2 deciders -> d = 2 classes {0,2} and {1,3}, per-class bound 1.
  // Unequal issue rates skew class totals (0+2 = 12 vs 1+3 = 2): legal,
  // the global check would have fired at spread 5.
  inv.grr_bind({6, 1, 6, 1}, here(), 0);
  EXPECT_FALSE(analyzer.report().has("INV-GRR-1"));
  // Spread inside class {0,2} beyond the bound: a striped cursor cannot
  // produce it through in-order channels.
  inv.grr_bind({8, 1, 5, 1}, here(), 0);
  EXPECT_TRUE(analyzer.report().has("INV-GRR-1", "analysis_test.cpp"));
  EXPECT_EQ(analyzer.report().invariant_violations(), 1);
}

// ---- happens-before race detection ---------------------------------------

TEST_F(AnalysisInvariants, UnorderedWritesFromTwoProcessesAreARace) {
  int shared = 0;
  sim.spawn("writer-a", [&] {
    ANALYSIS_WRITE(&shared, "test/shared");
  });
  sim.spawn("writer-b", [&] {
    ANALYSIS_WRITE(&shared, "test/shared");
  });
  sim.run();
  EXPECT_TRUE(analyzer.report().has("RACE", "analysis_test.cpp"));
  EXPECT_GE(analyzer.report().logical_races(), 1);
  EXPECT_EQ(analyzer.report().invariant_violations(), 0);
}

TEST_F(AnalysisInvariants, MailboxDeliveryOrdersTheAccesses) {
  int shared = 0;
  sim::Mailbox<int> mb(sim);
  sim.spawn("producer", [&] {
    ANALYSIS_WRITE(&shared, "test/shared");
    mb.send(1);
  });
  sim.spawn("consumer", [&] {
    (void)mb.receive();
    ANALYSIS_WRITE(&shared, "test/shared");
  });
  sim.run();
  EXPECT_EQ(analyzer.report().logical_races(), 0);
}

TEST_F(AnalysisInvariants, ScheduledEventInheritsTheSchedulersClock) {
  int shared = 0;
  sim.spawn("scheduler", [&] {
    ANALYSIS_WRITE(&shared, "test/shared");
    sim.schedule(sim::usec(5), [&] {
      ANALYSIS_WRITE(&shared, "test/shared");  // ordered: capture edge
    });
  });
  sim.run();
  EXPECT_EQ(analyzer.report().logical_races(), 0);
}

// ---- report artifact ------------------------------------------------------

TEST_F(AnalysisInvariants, RenderedReportNamesSitesAndChains) {
  analyzer.invariants().stream_op_indexed(0, 1, 1, 2, here(), 0);
  analyzer.invariants().stream_op_indexed(0, 1, 1, 2, here(), 0);
  std::ostringstream os;
  analyzer.render(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# strings analysis report"), std::string::npos);
  EXPECT_NE(text.find("INV-SST-1"), std::string::npos);
  EXPECT_NE(text.find("analysis_test.cpp"), std::string::npos);
}

// ---- clean-run contract ---------------------------------------------------

const char kAnalyzedScenario[] = R"(
mode = strings
topology = supernode
balancing = GWtMin
feedback = MBF
shared_network = true
placement = distributed
control_transport = data_plane
service_node = 0
refresh_epoch_ms = 10000
analyze = true

[stream]
app = MC
origin = 0
requests = 4
lambda_scale = 0.35
server_threads = 4
tenant = pricing-svc

[stream]
app = BS
origin = 1
requests = 4
lambda_scale = 0.35
server_threads = 4
tenant = options-svc
)";

TEST(AnalysisEndToEnd, CleanDistributedRunHasNoInvariantViolations) {
  auto cfg = workloads::parse_scenario(std::string(kAnalyzedScenario));
  const auto result = workloads::run_scenario_config_full(cfg, "", "", "");
  EXPECT_EQ(result.invariant_violations, 0);
  for (const auto& s : result.streams) EXPECT_EQ(s.errors, 0);
}

TEST(AnalysisEndToEnd, ReportArtifactWrittenAndAnalyzeForcedOn) {
  const std::string path = ::testing::TempDir() + "/analysis_e2e_report.txt";
  auto cfg = workloads::parse_scenario(std::string(kAnalyzedScenario));
  cfg.testbed.analyze = false;  // a non-empty path must force it back on
  const auto result = workloads::run_scenario_config_full(cfg, "", "", path);
  EXPECT_EQ(result.invariant_violations, 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("# strings analysis report"), std::string::npos);
  EXPECT_NE(text.find("invariant_violations: 0"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace strings
