// Property-based fairness suite for the device-level queueing policies.
//
// A synthetic epoch harness drives MqfqStickyPolicy / LasPolicy directly:
// open-loop arrival schedules (workloads/arrivals.hpp — the same generator
// the testbed uses) feed per-tenant request queues, each epoch builds the
// RcbSnapshot vector the dispatcher would, asks the policy who runs, and
// grants the epoch's service to the awake threads. Because everything is
// deterministic, each (seed, arrival-kind, policy) triple is a reproducible
// schedule, and the suite sweeps 50+ seeds of both Poisson and bursty
// traffic through both policies.
//
// Pinned invariants:
//   * virtual-time monotonicity — no tenant flow's virtual clock, nor the
//     global virtual time, ever moves backwards (MQFQ);
//   * work conservation — whenever any thread is backlogged, the policy
//     wakes at least one thread (MQFQ: the minimum flow is never throttled);
//   * bounded service gap — a backlogged flow's virtual time never exceeds
//     the global virtual time by more than throttle_T plus one epoch's
//     worth of service (the largest overshoot a single grant can add).
//
// On violation the test prints the seed and the recent event chain (epoch,
// awake set, per-flow virtual times) so the failure replays standalone.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "policies/device_policies.hpp"
#include "workloads/arrivals.hpp"
#include "workloads/testbed.hpp"

namespace strings {
namespace {

using policies::MqfqConfig;
using policies::MqfqStickyPolicy;
using policies::RcbSnapshot;
using workloads::ArrivalKind;
using workloads::OpenLoopTenant;

constexpr sim::SimTime kEpoch = sim::msec(1);
constexpr int kSeeds = 50;

struct HarnessTenant {
  std::string name;
  double weight = 1.0;
  std::uint64_t key = 0;            // one RCB per tenant
  std::vector<sim::SimTime> arrivals;
  std::size_t next_arrival = 0;
  int queued = 0;                   // requests arrived, not yet finished
  sim::SimTime remaining = 0;       // service left on the head request
  sim::SimTime service_per_request = sim::msec(5);
  sim::SimTime attained = 0;        // cumulative engine residency
};

/// Ring buffer of recent scheduling events, dumped when an invariant trips.
class EventRing {
 public:
  void push(std::string line) {
    if (lines_.size() >= 50) lines_.pop_front();
    lines_.push_back(std::move(line));
  }
  std::string dump(std::uint64_t seed) const {
    std::ostringstream os;
    os << "seed=" << seed << " recent events (oldest first):\n";
    for (const auto& l : lines_) os << "  " << l << "\n";
    return os.str();
  }

 private:
  std::deque<std::string> lines_;
};

std::vector<HarnessTenant> make_tenants(std::uint64_t seed, ArrivalKind kind) {
  // Three tenants with distinct weights and demand: a steady light flow, a
  // heavier flow, and a double-weight flow that arrives in the middle.
  std::vector<HarnessTenant> out(3);
  const char* names[] = {"alpha", "bravo", "charlie"};
  const double rates[] = {40.0, 120.0, 80.0};
  const double weights[] = {1.0, 1.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    OpenLoopTenant t;
    t.name = names[i];
    t.arrival = kind;
    t.rate_rps = rates[i];
    t.burst_factor = 6.0;
    t.burst_on = sim::msec(40);
    t.burst_off = sim::msec(120);
    t.requests = 60;
    t.seed = seed;
    t.attach_at = i == 2 ? sim::msec(150) : 0;
    out[i].name = t.name;
    out[i].weight = weights[i];
    out[i].key = static_cast<std::uint64_t>(i + 1);
    out[i].arrivals = workloads::arrival_schedule(t);
    out[i].service_per_request = sim::msec(3 + 2 * i);
  }
  return out;
}

std::vector<RcbSnapshot> snapshots(const std::vector<HarnessTenant>& tenants) {
  std::vector<RcbSnapshot> snaps;
  for (const auto& t : tenants) {
    RcbSnapshot s;
    s.key = t.key;
    s.tenant = t.name;
    s.tenant_weight = t.weight;
    s.total_service = t.attained;
    s.tenant_attained = t.attained;
    s.cgs = static_cast<double>(t.attained);
    s.backlogged = t.queued > 0;
    snaps.push_back(std::move(s));
  }
  return snaps;
}

/// Runs one deterministic schedule through `policy`, checking MQFQ-specific
/// invariants when `mqfq` is non-null; accumulates total service granted
/// into `*granted_out` (gtest ASSERT_* requires a void function).
void run_harness(policies::DeviceSchedPolicy& policy,
                 const MqfqStickyPolicy* mqfq, std::uint64_t seed,
                 ArrivalKind kind, EventRing& ring,
                 sim::SimTime* granted_out) {
  std::vector<HarnessTenant> tenants = make_tenants(seed, kind);
  std::map<std::string, double> last_vt;
  double last_global = 0.0;
  sim::SimTime granted = 0;
  const double max_weight = 2.0;  // service/weight overshoot bound per epoch

  for (sim::SimTime now = 0; now < sim::sec(4); now += kEpoch) {
    // Admit arrivals, then let the policy decide who runs this epoch.
    for (auto& t : tenants) {
      while (t.next_arrival < t.arrivals.size() &&
             t.arrivals[t.next_arrival] <= now) {
        if (t.queued == 0) t.remaining = t.service_per_request;
        ++t.queued;
        ++t.next_arrival;
      }
    }
    const std::vector<RcbSnapshot> snaps = snapshots(tenants);
    bool any_backlogged = false;
    for (const auto& s : snaps) any_backlogged = any_backlogged || s.backlogged;

    const std::vector<std::uint64_t> awake = policy.pick_awake(snaps, now);
    {
      std::ostringstream ev;
      ev << "t=" << now / 1000000 << "ms awake={";
      for (const auto k : awake) ev << k << ",";
      ev << "}";
      if (mqfq != nullptr) {
        ev << " gvt=" << mqfq->global_vtime();
        for (const auto& [name, vt] : mqfq->vtimes()) {
          ev << " " << name << ":" << vt;
        }
      }
      ring.push(ev.str());
    }

    // Work conservation: backlog implies at least one awake thread.
    if (any_backlogged) {
      ASSERT_FALSE(awake.empty())
          << "policy " << policy.name()
          << " left the device idle with backlogged tenants\n"
          << ring.dump(seed);
    }

    if (mqfq != nullptr) {
      const double global = mqfq->global_vtime();
      ASSERT_GE(global + 1e-6, last_global)
          << "global virtual time moved backwards\n" << ring.dump(seed);
      last_global = global;
      const double bound = static_cast<double>(mqfq->config().throttle_T) +
                           static_cast<double>(kEpoch) * max_weight;
      for (const auto& [name, vt] : mqfq->vtimes()) {
        auto it = last_vt.find(name);
        if (it != last_vt.end()) {
          ASSERT_GE(vt + 1e-6, it->second)
              << "flow " << name << " virtual time moved backwards\n"
              << ring.dump(seed);
        }
        last_vt[name] = vt;
        // Bounded service gap: backlogged flows never run away from the
        // global virtual time by more than T plus one epoch's grant.
        for (const auto& s : snaps) {
          if (s.tenant == name && s.backlogged) {
            ASSERT_LE(vt, global + bound)
                << "flow " << name << " exceeded the throttle bound\n"
                << ring.dump(seed);
          }
        }
      }
    }

    // Grant the epoch's service evenly across the awake threads.
    if (awake.empty()) continue;
    const sim::SimTime share =
        kEpoch / static_cast<sim::SimTime>(awake.size());
    for (const auto key : awake) {
      for (auto& t : tenants) {
        if (t.key != key || t.queued == 0) continue;
        const sim::SimTime grant = std::min(share, t.remaining);
        t.attained += grant;
        granted += grant;
        t.remaining -= grant;
        if (t.remaining == 0) {
          --t.queued;
          if (t.queued > 0) t.remaining = t.service_per_request;
        }
      }
    }
  }
  *granted_out = granted;
}

class FairnessProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FairnessProperty, MqfqInvariantsHoldAcrossSeeds) {
  const auto [seed, kind_idx] = GetParam();
  const ArrivalKind kind =
      kind_idx == 0 ? ArrivalKind::kPoisson : ArrivalKind::kBursty;
  MqfqStickyPolicy policy;
  EventRing ring;
  sim::SimTime granted = 0;
  run_harness(policy, &policy, static_cast<std::uint64_t>(seed), kind, ring,
              &granted);
  EXPECT_GT(granted, 0) << ring.dump(static_cast<std::uint64_t>(seed));
}

TEST_P(FairnessProperty, LasStaysWorkConservingAcrossSeeds) {
  const auto [seed, kind_idx] = GetParam();
  const ArrivalKind kind =
      kind_idx == 0 ? ArrivalKind::kPoisson : ArrivalKind::kBursty;
  auto policy = policies::make_device_policy("LAS");
  EventRing ring;
  sim::SimTime granted = 0;
  run_harness(*policy, nullptr, static_cast<std::uint64_t>(seed), kind, ring,
              &granted);
  EXPECT_GT(granted, 0) << ring.dump(static_cast<std::uint64_t>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FairnessProperty,
    ::testing::Combine(::testing::Range(1, kSeeds + 1),
                       ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return (std::get<1>(info.param) == 0 ? "poisson" : "bursty") +
             std::string("_seed") + std::to_string(std::get<0>(info.param));
    });

// Directed edge cases the sweep may not hit.

TEST(MqfqSticky, IdleFlowIsLiftedToGlobalVirtualTime) {
  MqfqStickyPolicy policy;
  RcbSnapshot a;
  a.key = 1;
  a.tenant = "a";
  a.backlogged = true;
  RcbSnapshot b;
  b.key = 2;
  b.tenant = "b";
  b.backlogged = false;
  // `a` runs alone and banks service; `b` idles the whole time.
  a.tenant_attained = sim::msec(500);
  (void)policy.pick_awake({a, b}, 0);
  // When `b` finally wakes up it must not carry 500 ms of banked credit:
  // its virtual time starts at the global virtual time, not zero.
  b.backlogged = true;
  (void)policy.pick_awake({a, b}, sim::msec(10));
  double vt_a = -1.0, vt_b = -1.0;
  for (const auto& [name, vt] : policy.vtimes()) {
    if (name == "a") vt_a = vt;
    if (name == "b") vt_b = vt;
  }
  EXPECT_GE(vt_b, policy.global_vtime() - 1e-9);
  EXPECT_GE(vt_a, vt_b);
}

TEST(MqfqSticky, ThrottledFlowIsReportedAndMinFlowRuns) {
  MqfqConfig cfg;
  cfg.throttle_T = sim::msec(10);
  MqfqStickyPolicy policy(cfg);
  RcbSnapshot ahead;
  ahead.key = 1;
  ahead.tenant = "ahead";
  ahead.backlogged = true;
  RcbSnapshot behind;
  behind.key = 2;
  behind.tenant = "behind";
  behind.backlogged = true;
  (void)policy.pick_awake({ahead, behind}, 0);
  // `ahead` attains 50 ms while `behind` attains nothing: beyond T=10ms.
  ahead.tenant_attained = sim::msec(50);
  const auto awake = policy.pick_awake({ahead, behind}, sim::msec(1));
  ASSERT_EQ(policy.last_throttled().size(), 1u);
  EXPECT_EQ(policy.last_throttled()[0], "ahead");
  ASSERT_EQ(awake.size(), 1u);
  EXPECT_EQ(awake[0], 2u);  // the minimum flow always runs
}

TEST(MqfqSticky, DetachedTenantKeepsVirtualTimeAcrossReattach) {
  MqfqStickyPolicy policy;
  RcbSnapshot a;
  a.key = 1;
  a.tenant = "a";
  a.backlogged = true;
  RcbSnapshot b;
  b.key = 2;
  b.tenant = "b";
  b.backlogged = true;
  b.tenant_attained = sim::msec(100);
  (void)policy.pick_awake({a, b}, 0);
  double vt_before = -1.0;
  for (const auto& [name, vt] : policy.vtimes()) {
    if (name == "b") vt_before = vt;
  }
  // `b` detaches (vanishes from the snapshot) and later re-attaches: its
  // virtual time must survive, or churn would reset fairness history.
  (void)policy.pick_awake({a}, sim::msec(5));
  (void)policy.pick_awake({a, b}, sim::msec(10));
  double vt_after = -1.0;
  for (const auto& [name, vt] : policy.vtimes()) {
    if (name == "b") vt_after = vt;
  }
  EXPECT_GE(vt_after, vt_before);
}

TEST(MqfqSticky, HeadOfLineThreadDispatchesPerTenant) {
  MqfqStickyPolicy policy;
  // One tenant with a deep backlog of three threads: only the head-of-line
  // (lowest key) may dispatch, so a deep queue cannot flood the engines.
  RcbSnapshot r1;
  r1.key = 7;
  r1.tenant = "t";
  r1.backlogged = true;
  RcbSnapshot r2 = r1;
  r2.key = 3;
  RcbSnapshot r3 = r1;
  r3.key = 9;
  const auto awake = policy.pick_awake({r1, r2, r3}, 0);
  ASSERT_EQ(awake.size(), 1u);
  EXPECT_EQ(awake[0], 3u);
}

// End-to-end: the same invariants hold when the real dispatcher drives the
// policy inside a testbed with open-loop traffic.
TEST(MqfqSticky, EndToEndOpenLoopRunCompletesAllRequests) {
  workloads::TestbedConfig tcfg;
  tcfg.mode = workloads::Mode::kStrings;
  tcfg.device_policy = "MQFQ";
  OpenLoopTenant a;
  a.name = "alpha";
  a.app = "GA";
  a.arrival = ArrivalKind::kPoisson;
  a.rate_rps = 4.0;
  a.requests = 6;
  a.seed = 3;
  OpenLoopTenant b = a;
  b.name = "bravo";
  b.arrival = ArrivalKind::kBursty;
  b.seed = 4;
  b.requests = 5;
  sim::Simulation sim;
  workloads::Testbed bed(sim, tcfg);
  const auto stats = workloads::run_open_loop(bed, {a, b});
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].completed, 6);
  EXPECT_EQ(stats[1].completed, 5);
  EXPECT_EQ(stats[0].errors, 0);
  EXPECT_EQ(stats[1].errors, 0);
  EXPECT_GT(bed.attained_service_s("alpha"), 0.0);
  EXPECT_GT(bed.attained_service_s("bravo"), 0.0);
}

}  // namespace
}  // namespace strings
